#include "has/service_profile.hpp"

#include <gtest/gtest.h>

#include "util/expect.hpp"

namespace droppkt::has {
namespace {

TEST(ServiceProfiles, ThreeServicesWithPaperNames) {
  const auto all = all_services();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].name, "Svc1");
  EXPECT_EQ(all[1].name, "Svc2");
  EXPECT_EQ(all[2].name, "Svc3");
}

TEST(ServiceProfiles, LookupByName) {
  EXPECT_EQ(service_by_name("Svc2").name, "Svc2");
  EXPECT_THROW(service_by_name("Svc9"), droppkt::ContractViolation);
}

TEST(ServiceProfiles, Svc1MatchesPaperDescription) {
  const auto p = svc1_profile();
  // Paper: Svc1 uses a 240 s buffer.
  EXPECT_EQ(p.buffer_capacity_s, 240.0);
  // Paper: quality thresholds low<=288p, med=480p.
  EXPECT_EQ(p.low_max_px, 288);
  EXPECT_EQ(p.med_max_px, 480);
  // Quality-sacrificing ABR.
  EXPECT_EQ(p.abr, AbrKind::kBufferFill);
  // Range requests -> many HTTP transactions per TLS connection.
  EXPECT_GT(p.max_request_bytes, 0.0);
}

TEST(ServiceProfiles, Svc2MatchesPaperDescription) {
  const auto p = svc2_profile();
  EXPECT_LT(p.buffer_capacity_s, svc1_profile().buffer_capacity_s);
  EXPECT_EQ(p.low_max_px, 360);  // paper: 360p or lower is low
  EXPECT_EQ(p.med_max_px, 480);
  EXPECT_EQ(p.abr, AbrKind::kStickyRate);
}

TEST(ServiceProfiles, Svc3HasExactlyThreeLevels) {
  const auto p = svc3_profile();
  EXPECT_EQ(p.ladder.size(), 3u);
  // Levels map 1:1 onto low/medium/high.
  EXPECT_EQ(p.ladder.level(0).height_px, p.low_max_px);
  EXPECT_EQ(p.ladder.level(1).height_px, p.med_max_px);
  EXPECT_GT(p.ladder.level(2).height_px, p.med_max_px);
}

TEST(ServiceProfiles, Svc1LadderSkips360p) {
  // The paper's Svc1 thresholds only make sense without a 360p rung.
  const auto p = svc1_profile();
  for (const auto& level : p.ladder.levels()) {
    EXPECT_NE(level.height_px, 360);
  }
}

TEST(ServiceProfiles, ConnectionPoliciesWellFormed) {
  for (const auto& p : all_services()) {
    const auto& c = p.connections;
    EXPECT_GE(c.cdn_hosts_per_session, 1);
    EXPECT_GE(c.cdn_pool_size, c.cdn_hosts_per_session);
    EXPECT_GT(c.max_requests_per_connection, 0);
    EXPECT_GT(c.idle_timeout_s, 0.0);
    EXPECT_NE(c.cdn_host_format.find("%d"), std::string::npos);
    EXPECT_FALSE(c.api_host.empty());
    EXPECT_FALSE(c.beacon_host.empty());
    // Hosts must be service-distinct for session identification to work.
    EXPECT_NE(c.api_host, c.beacon_host);
  }
}

TEST(ServiceProfiles, SegmentBytesScalesWithQuality) {
  for (const auto& p : all_services()) {
    double prev = 0.0;
    for (std::size_t q = 0; q < p.ladder.size(); ++q) {
      const double bytes = p.segment_bytes(q);
      EXPECT_GT(bytes, prev);
      prev = bytes;
    }
  }
}

TEST(ServiceProfiles, SegmentBytesIncludesMuxedAudioOnlyWhenNotSeparate) {
  const auto svc3 = svc3_profile();  // muxed audio
  ASSERT_FALSE(svc3.separate_audio);
  const double with_audio = svc3.segment_bytes(0);
  const double video_only =
      svc3.ladder.level(0).bitrate_kbps * 1000.0 / 8.0 * svc3.segment_duration_s;
  EXPECT_GT(with_audio, video_only);

  const auto svc1 = svc1_profile();  // separate audio
  ASSERT_TRUE(svc1.separate_audio);
  const double v1 =
      svc1.ladder.level(0).bitrate_kbps * 1000.0 / 8.0 * svc1.segment_duration_s;
  EXPECT_NEAR(svc1.segment_bytes(0), v1, 1.0);
}

TEST(ServiceProfiles, StartupBufferBelowCapacity) {
  for (const auto& p : all_services()) {
    EXPECT_LT(p.startup_buffer_s, p.buffer_capacity_s);
    EXPECT_GT(p.startup_buffer_s, 0.0);
    EXPECT_GT(p.segment_duration_s, 0.0);
  }
}

TEST(ServiceProfiles, DistinctHostnameNamespaces) {
  const auto all = all_services();
  // No service shares hostnames with another (video traffic identification
  // by SNI must be unambiguous).
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t j = i + 1; j < all.size(); ++j) {
      EXPECT_NE(all[i].connections.api_host, all[j].connections.api_host);
      EXPECT_NE(all[i].connections.cdn_host_format,
                all[j].connections.cdn_host_format);
    }
  }
}

}  // namespace
}  // namespace droppkt::has
