#include <gtest/gtest.h>

#include "core/dataset_builder.hpp"
#include "has/service_profile.hpp"

namespace droppkt::has {
namespace {

TEST(LiveProfile, SmallBufferAndShortSegments) {
  const auto live = svc_live_profile();
  const auto vod = svc1_profile();
  EXPECT_LT(live.buffer_capacity_s, 20.0);
  EXPECT_LT(live.buffer_capacity_s, vod.buffer_capacity_s / 10.0);
  EXPECT_LT(live.segment_duration_s, vod.segment_duration_s);
  EXPECT_EQ(live.name, "Svc1-Live");
}

TEST(LiveProfile, KeepsSvc1LadderAndThresholds) {
  const auto live = svc_live_profile();
  const auto vod = svc1_profile();
  EXPECT_EQ(live.ladder.size(), vod.ladder.size());
  EXPECT_EQ(live.low_max_px, vod.low_max_px);
  EXPECT_EQ(live.med_max_px, vod.med_max_px);
}

TEST(LiveProfile, DistinctHostNamespace) {
  const auto live = svc_live_profile();
  EXPECT_NE(live.connections.cdn_host_format,
            svc1_profile().connections.cdn_host_format);
}

TEST(LiveProfile, LiveSessionsStallMoreThanVod) {
  core::DatasetConfig cfg;
  cfg.num_sessions = 200;
  cfg.seed = 5;
  cfg.trace_pool_size = 60;
  const auto live_ds = core::build_dataset(svc_live_profile(), cfg);
  const auto vod_ds = core::build_dataset(svc1_profile(), cfg);
  auto high_rebuf = [](const core::LabeledDataset& ds) {
    std::size_t n = 0;
    for (const auto& s : ds) n += s.labels.rebuffering == 0;
    return static_cast<double>(n) / ds.size();
  };
  EXPECT_GT(high_rebuf(live_ds), high_rebuf(vod_ds));
}

TEST(LiveProfile, TrafficIsRealTimePaced) {
  // A live player's buffer cap means downloads cannot run far ahead of
  // real time: total downlink over a long session on a fat link is
  // bounded by the top encoding rate, while VOD races ahead.
  core::DatasetConfig cfg;
  cfg.num_sessions = 60;
  cfg.seed = 6;
  const auto live_ds = core::build_dataset(svc_live_profile(), cfg);
  const auto live = svc_live_profile();
  const double top_kbps =
      live.ladder.level(live.ladder.highest()).bitrate_kbps +
      live.audio_bitrate_kbps;
  for (const auto& s : live_ds) {
    double dl = 0.0;
    for (const auto& t : s.record.http) dl += t.dl_bytes;
    const double avg_kbps = dl * 8.0 / 1000.0 / s.record.watch_duration_s;
    // Encoded-rate ceiling with headroom for per-title variance and assets.
    EXPECT_LT(avg_kbps, top_kbps * 2.5);
  }
}

}  // namespace
}  // namespace droppkt::has
