#include "has/quality_ladder.hpp"

#include <gtest/gtest.h>

#include "util/expect.hpp"

namespace droppkt::has {
namespace {

QualityLadder make_ladder() {
  return QualityLadder({{240, 300.0, "240p"},
                        {480, 1000.0, "480p"},
                        {720, 2500.0, "720p"}});
}

TEST(QualityLadder, BasicAccessors) {
  const auto l = make_ladder();
  EXPECT_EQ(l.size(), 3u);
  EXPECT_EQ(l.lowest(), 0u);
  EXPECT_EQ(l.highest(), 2u);
  EXPECT_EQ(l.level(1).height_px, 480);
  EXPECT_EQ(l.level(1).label, "480p");
}

TEST(QualityLadder, LevelOutOfRangeThrows) {
  const auto l = make_ladder();
  EXPECT_THROW(l.level(3), droppkt::ContractViolation);
}

TEST(QualityLadder, MaxSustainablePicksHighestAffordable) {
  const auto l = make_ladder();
  EXPECT_EQ(l.max_sustainable(5000.0), 2u);
  EXPECT_EQ(l.max_sustainable(2500.0), 2u);   // boundary inclusive
  EXPECT_EQ(l.max_sustainable(2499.0), 1u);
  EXPECT_EQ(l.max_sustainable(999.0), 0u);
  EXPECT_EQ(l.max_sustainable(0.0), 0u);      // floor at lowest
}

TEST(QualityLadder, RejectsEmpty) {
  EXPECT_THROW(QualityLadder({}), droppkt::ContractViolation);
}

TEST(QualityLadder, RejectsNonIncreasingBitrate) {
  EXPECT_THROW(QualityLadder({{240, 300.0, "a"}, {480, 300.0, "b"}}),
               droppkt::ContractViolation);
  EXPECT_THROW(QualityLadder({{240, 300.0, "a"}, {480, 200.0, "b"}}),
               droppkt::ContractViolation);
}

TEST(QualityLadder, RejectsDecreasingHeights) {
  EXPECT_THROW(QualityLadder({{480, 300.0, "a"}, {240, 500.0, "b"}}),
               droppkt::ContractViolation);
}

TEST(QualityLadder, RejectsNonPositiveValues) {
  EXPECT_THROW(QualityLadder({{0, 300.0, "a"}}), droppkt::ContractViolation);
  EXPECT_THROW(QualityLadder({{240, 0.0, "a"}}), droppkt::ContractViolation);
}

TEST(QualityLadder, SingleLevelLadder) {
  const QualityLadder l({{480, 900.0, "480p"}});
  EXPECT_EQ(l.lowest(), l.highest());
  EXPECT_EQ(l.max_sustainable(100.0), 0u);
  EXPECT_EQ(l.max_sustainable(10000.0), 0u);
}

}  // namespace
}  // namespace droppkt::has
