#include <gtest/gtest.h>

#include "has/player.hpp"
#include "net/trace_generator.hpp"
#include "util/expect.hpp"

namespace droppkt::has {
namespace {

Video test_video() {
  return {.id = "v", .genre = Genre::kDrama, .duration_s = 7200.0,
          .bitrate_factor = 1.0, .size_variability = 0.1};
}

PlaybackResult run(const InteractionModel& interactions, double kbps,
                   double watch, std::uint64_t seed) {
  const auto trace = net::BandwidthTrace::constant(kbps, 600.0);
  const net::LinkModel link(trace,
                            net::link_params_for(net::Environment::kBroadband));
  util::Rng rng(seed);
  return PlayerSimulator{}.play(svc1_profile(), test_video(), link, watch, rng,
                                interactions);
}

TEST(InteractionModel, DisabledByDefault) {
  const InteractionModel m;
  EXPECT_FALSE(m.enabled());
  const InteractionModel p{.pause_rate_per_min = 1.0};
  EXPECT_TRUE(p.enabled());
}

TEST(Interactions, NoModelNoEvents) {
  const auto r = run({}, 8000.0, 200.0, 1);
  EXPECT_EQ(r.ground_truth.pause_count, 0u);
  EXPECT_EQ(r.ground_truth.seek_count, 0u);
}

TEST(Interactions, PausesOccurAtConfiguredRate) {
  const InteractionModel m{.pause_rate_per_min = 2.0, .pause_mean_s = 5.0};
  double pauses = 0.0, minutes = 0.0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto r = run(m, 8000.0, 300.0, seed);
    pauses += static_cast<double>(r.ground_truth.pause_count);
    minutes += r.ground_truth.session_end_s / 60.0;
  }
  EXPECT_NEAR(pauses / minutes, 2.0, 1.0);
}

TEST(Interactions, PausesReducePlaybackShare) {
  const InteractionModel heavy{.pause_rate_per_min = 3.0, .pause_mean_s = 30.0};
  const auto clean = run({}, 8000.0, 300.0, 7);
  const auto paused = run(heavy, 8000.0, 300.0, 7);
  ASSERT_GT(paused.ground_truth.pause_count, 0u);
  EXPECT_LT(paused.ground_truth.playback_s, clean.ground_truth.playback_s);
}

TEST(Interactions, PausesAreNotStalls) {
  const InteractionModel m{.pause_rate_per_min = 3.0, .pause_mean_s = 30.0};
  // A fast link: any "downtime" must be pauses, not stalls.
  const auto r = run(m, 50000.0, 300.0, 8);
  ASSERT_GT(r.ground_truth.pause_count, 0u);
  EXPECT_EQ(r.ground_truth.stall_time_s(), 0.0);
  EXPECT_EQ(r.ground_truth.rebuffer_ratio(), 0.0);
}

TEST(Interactions, SeeksDiscardBufferAndCanStall) {
  const InteractionModel m{.seek_rate_per_min = 4.0, .seek_mean_s = 120.0};
  // A moderate link: frequent long seeks drain the buffer.
  double stall_with_seeks = 0.0, stall_clean = 0.0;
  std::size_t seeks = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto a = run(m, 2500.0, 240.0, seed);
    const auto b = run({}, 2500.0, 240.0, seed);
    stall_with_seeks += a.ground_truth.stall_time_s();
    stall_clean += b.ground_truth.stall_time_s();
    seeks += a.ground_truth.seek_count;
  }
  EXPECT_GT(seeks, 0u);
  EXPECT_GE(stall_with_seeks, stall_clean);
}

TEST(Interactions, SessionInvariantsStillHold) {
  const InteractionModel m{.pause_rate_per_min = 1.5,
                           .pause_mean_s = 20.0,
                           .seek_rate_per_min = 1.0,
                           .seek_mean_s = 60.0};
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    util::Rng pick(seed);
    const double kbps = pick.uniform(300.0, 20000.0);
    const double watch = pick.uniform(30.0, 400.0);
    const auto r = run(m, kbps, watch, seed);
    const auto& gt = r.ground_truth;
    EXPECT_GE(gt.playback_s, 0.0);
    EXPECT_LE(gt.playback_s, watch + 1e-6);
    EXPECT_GE(gt.session_end_s, watch);
    for (const auto& s : gt.stalls) EXPECT_LT(s.start_s, s.end_s);
  }
}

TEST(Interactions, Deterministic) {
  const InteractionModel m{.pause_rate_per_min = 1.0,
                           .seek_rate_per_min = 1.0};
  const auto a = run(m, 4000.0, 200.0, 42);
  const auto b = run(m, 4000.0, 200.0, 42);
  EXPECT_EQ(a.ground_truth.pause_count, b.ground_truth.pause_count);
  EXPECT_EQ(a.ground_truth.seek_count, b.ground_truth.seek_count);
  EXPECT_EQ(a.ground_truth.playback_s, b.ground_truth.playback_s);
  EXPECT_EQ(a.http.size(), b.http.size());
}

}  // namespace
}  // namespace droppkt::has
