#include "has/player.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "net/trace_generator.hpp"
#include "util/expect.hpp"

namespace droppkt::has {
namespace {

Video test_video(double factor = 1.0) {
  return {.id = "v0",
          .genre = Genre::kDrama,
          .duration_s = 3600.0,
          .bitrate_factor = factor,
          .size_variability = 0.1};
}

PlaybackResult run(const ServiceProfile& svc, double kbps, double watch_s,
                   std::uint64_t seed = 1) {
  const auto trace = net::BandwidthTrace::constant(kbps, 600.0);
  const net::LinkModel link(trace, net::link_params_for(net::Environment::kBroadband));
  util::Rng rng(seed);
  const PlayerSimulator player;
  return player.play(svc, test_video(), link, watch_s, rng);
}

TEST(GroundTruth, RebufferRatioDefinition) {
  GroundTruth gt;
  gt.playback_s = 100.0;
  gt.stalls = {{10.0, 12.0}, {50.0, 53.0}};
  EXPECT_NEAR(gt.stall_time_s(), 5.0, 1e-12);
  EXPECT_NEAR(gt.rebuffer_ratio(), 0.05, 1e-12);
}

TEST(GroundTruth, ZeroPlaybackHasZeroRatio) {
  GroundTruth gt;
  gt.stalls = {{0.0, 5.0}};
  EXPECT_EQ(gt.rebuffer_ratio(), 0.0);
}

TEST(Player, GoodNetworkNoStalls) {
  const auto r = run(svc1_profile(), 50000.0, 120.0);
  EXPECT_EQ(r.ground_truth.stalls.size(), 0u);
  EXPECT_GT(r.ground_truth.playback_s, 100.0);
  EXPECT_LT(r.ground_truth.startup_delay_s, 5.0);
}

TEST(Player, GoodNetworkReachesHighQuality) {
  const auto svc = svc1_profile();
  // Generous deterministic-ish check across seeds: a 50 Mbps link should
  // reach the upper ladder within a 3-minute session (unless the device cap
  // randomly applies, so check across seeds).
  int reached_high = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto r = run(svc, 50000.0, 180.0, seed);
    const auto& h = r.ground_truth.played_height_per_s;
    ASSERT_FALSE(h.empty());
    if (*std::max_element(h.begin(), h.end()) >= 720) ++reached_high;
  }
  EXPECT_GE(reached_high, 5);
}

TEST(Player, StarvedNetworkStalls) {
  // 150 kbps cannot sustain even the lowest rung + audio.
  const auto r = run(svc2_profile(), 150.0, 120.0);
  EXPECT_GT(r.ground_truth.stall_time_s(), 1.0);
}

TEST(Player, StarvedNetworkStaysLowQuality) {
  const auto r = run(svc1_profile(), 400.0, 180.0);
  const auto& h = r.ground_truth.played_height_per_s;
  ASSERT_FALSE(h.empty());
  // Majority of played seconds at the low rungs.
  int low = 0;
  for (int px : h) low += (px <= 288);
  EXPECT_GT(low * 2, static_cast<int>(h.size()));
}

TEST(Player, PlaybackNeverExceedsWatchDuration) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto r = run(svc3_profile(), 3000.0, 90.0, seed);
    EXPECT_LE(r.ground_truth.playback_s, 90.0 + 1e-6);
    EXPECT_GE(r.ground_truth.session_end_s, 90.0);
  }
}

TEST(Player, StallsAreDisjointAndOrdered) {
  const auto r = run(svc2_profile(), 500.0, 300.0, 3);
  const auto& stalls = r.ground_truth.stalls;
  for (std::size_t i = 0; i < stalls.size(); ++i) {
    EXPECT_LT(stalls[i].start_s, stalls[i].end_s);
    if (i > 0) {
      EXPECT_GE(stalls[i].start_s, stalls[i - 1].end_s - 1e-9);
    }
  }
}

TEST(Player, StallsExcludeStartup) {
  const auto r = run(svc2_profile(), 800.0, 200.0, 4);
  for (const auto& s : r.ground_truth.stalls) {
    EXPECT_GE(s.start_s, r.ground_truth.startup_delay_s - 1e-9);
  }
}

TEST(Player, HttpLogSortedAndWellFormed) {
  const auto r = run(svc1_profile(), 4000.0, 120.0, 5);
  ASSERT_GT(r.http.size(), 10u);
  for (std::size_t i = 0; i < r.http.size(); ++i) {
    const auto& t = r.http[i];
    EXPECT_LE(t.request_s, t.response_start_s);
    EXPECT_LE(t.response_start_s, t.response_end_s + 1e-9);
    EXPECT_GE(t.ul_bytes, 0.0);
    EXPECT_GE(t.dl_bytes, 0.0);
    if (i > 0) {
      EXPECT_GE(t.request_s, r.http[i - 1].request_s);
    }
  }
}

TEST(Player, HttpLogContainsAllKinds) {
  const auto r = run(svc1_profile(), 4000.0, 200.0, 6);
  bool has[static_cast<int>(HttpKind::kAsset) + 1] = {};
  for (const auto& t : r.http) has[static_cast<int>(t.kind)] = true;
  EXPECT_TRUE(has[static_cast<int>(HttpKind::kManifest)]);
  EXPECT_TRUE(has[static_cast<int>(HttpKind::kInitSegment)]);
  EXPECT_TRUE(has[static_cast<int>(HttpKind::kVideoSegment)]);
  EXPECT_TRUE(has[static_cast<int>(HttpKind::kAudioSegment)]);
  EXPECT_TRUE(has[static_cast<int>(HttpKind::kBeacon)]);
}

TEST(Player, MuxedServiceHasNoAudioRequests) {
  const auto r = run(svc3_profile(), 4000.0, 120.0, 7);
  for (const auto& t : r.http) {
    EXPECT_NE(t.kind, HttpKind::kAudioSegment);
  }
}

TEST(Player, RangeRequestsBoundedByConfiguredCap) {
  const auto svc = svc1_profile();
  const auto r = run(svc, 20000.0, 120.0, 8);
  for (const auto& t : r.http) {
    if (t.kind == HttpKind::kVideoSegment) {
      // Range scale is at most 1.8 * 1.4 of the configured cap.
      EXPECT_LE(t.dl_bytes, svc.max_request_bytes * 1.8 * 1.4 + 1.0);
    }
  }
}

TEST(Player, PlayedQualityVectorsConsistent) {
  const auto r = run(svc2_profile(), 3000.0, 100.0, 9);
  const auto& gt = r.ground_truth;
  EXPECT_EQ(gt.played_level_per_s.size(), gt.played_height_per_s.size());
  EXPECT_LE(static_cast<double>(gt.played_level_per_s.size()),
            gt.playback_s + 1.0);
}

TEST(Player, Deterministic) {
  const auto a = run(svc2_profile(), 2500.0, 150.0, 42);
  const auto b = run(svc2_profile(), 2500.0, 150.0, 42);
  EXPECT_EQ(a.http.size(), b.http.size());
  EXPECT_EQ(a.ground_truth.playback_s, b.ground_truth.playback_s);
  EXPECT_EQ(a.ground_truth.stall_time_s(), b.ground_truth.stall_time_s());
}

TEST(Player, RejectsNonPositiveWatch) {
  const auto trace = net::BandwidthTrace::constant(1000.0, 60.0);
  const net::LinkModel link(trace);
  util::Rng rng(1);
  const PlayerSimulator player;
  EXPECT_THROW(player.play(svc1_profile(), test_video(), link, 0.0, rng),
               droppkt::ContractViolation);
}

TEST(Player, VeryShortWatchStillProducesASession) {
  const auto r = run(svc1_profile(), 5000.0, 10.0, 10);
  EXPECT_GT(r.http.size(), 0u);
  EXPECT_GE(r.ground_truth.session_end_s, 10.0);
}

// Property: across services, seeds and rates, core invariants hold.
class PlayerProperty
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(PlayerProperty, SessionInvariants) {
  const auto services = all_services();
  const auto& svc = services[std::get<0>(GetParam())];
  util::Rng seed_rng(std::get<1>(GetParam()));
  const double kbps = seed_rng.uniform(200.0, 30000.0);
  const double watch = seed_rng.uniform(15.0, 400.0);
  const auto r = run(svc, kbps, watch, seed_rng());

  const auto& gt = r.ground_truth;
  EXPECT_GE(gt.playback_s, 0.0);
  EXPECT_LE(gt.playback_s, watch + 1e-6);
  EXPECT_GE(gt.startup_delay_s, 0.0);
  EXPECT_GE(gt.session_end_s, watch);
  EXPECT_GE(gt.rebuffer_ratio(), 0.0);
  for (const auto& s : gt.stalls) EXPECT_LT(s.start_s, s.end_s);
  for (std::size_t lvl : gt.played_level_per_s) {
    EXPECT_LT(lvl, svc.ladder.size());
  }
  // Total downloaded bytes are positive whenever anything played.
  if (gt.playback_s > 0) {
    double dl = 0.0;
    for (const auto& t : r.http) dl += t.dl_bytes;
    EXPECT_GT(dl, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ServicesAndSeeds, PlayerProperty,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Range<std::uint64_t>(0, 8)));

}  // namespace
}  // namespace droppkt::has
