#include "has/video_catalog.hpp"

#include <gtest/gtest.h>

#include <set>

#include "util/expect.hpp"

namespace droppkt::has {
namespace {

TEST(VideoCatalog, GeneratesRequestedCount) {
  const auto c = VideoCatalog::generate("Svc1", 60, 1);
  EXPECT_EQ(c.size(), 60u);
}

TEST(VideoCatalog, Deterministic) {
  const auto a = VideoCatalog::generate("Svc1", 30, 7);
  const auto b = VideoCatalog::generate("Svc1", 30, 7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.video(i).id, b.video(i).id);
    EXPECT_EQ(a.video(i).bitrate_factor, b.video(i).bitrate_factor);
    EXPECT_EQ(a.video(i).duration_s, b.video(i).duration_s);
  }
}

TEST(VideoCatalog, UniqueIdsWithServicePrefix) {
  const auto c = VideoCatalog::generate("SvcX", 50, 2);
  std::set<std::string> ids;
  for (std::size_t i = 0; i < c.size(); ++i) {
    const auto& v = c.video(i);
    EXPECT_EQ(v.id.find("SvcX-video-"), 0u);
    ids.insert(v.id);
  }
  EXPECT_EQ(ids.size(), 50u);
}

TEST(VideoCatalog, AttributesInRange) {
  const auto c = VideoCatalog::generate("Svc2", 75, 3);
  for (std::size_t i = 0; i < c.size(); ++i) {
    const auto& v = c.video(i);
    EXPECT_GE(v.duration_s, 1260.0);  // long enough for 10-1200 s watches
    EXPECT_GT(v.bitrate_factor, 0.3);
    EXPECT_LT(v.bitrate_factor, 2.0);
    EXPECT_GT(v.size_variability, 0.0);
    EXPECT_LT(v.size_variability, 0.5);
  }
}

TEST(VideoCatalog, GenreDiversity) {
  const auto c = VideoCatalog::generate("Svc3", 75, 4);
  std::set<Genre> genres;
  for (std::size_t i = 0; i < c.size(); ++i) genres.insert(c.video(i).genre);
  EXPECT_GE(genres.size(), 4u);
}

TEST(VideoCatalog, SportsCostMoreBitsThanAnimation) {
  const auto c = VideoCatalog::generate("Svc1", 75, 5);
  double sports_min = 10.0, animation_max = 0.0;
  for (std::size_t i = 0; i < c.size(); ++i) {
    const auto& v = c.video(i);
    if (v.genre == Genre::kSports) sports_min = std::min(sports_min, v.bitrate_factor);
    if (v.genre == Genre::kAnimation)
      animation_max = std::max(animation_max, v.bitrate_factor);
  }
  EXPECT_GT(sports_min, animation_max * 0.99);
}

TEST(VideoCatalog, SampleReturnsMembers) {
  const auto c = VideoCatalog::generate("Svc1", 10, 6);
  util::Rng rng(1);
  std::set<std::string> seen;
  for (int i = 0; i < 200; ++i) seen.insert(c.sample(rng).id);
  EXPECT_GT(seen.size(), 5u);  // sampling covers the catalog
}

TEST(VideoCatalog, RejectsEmpty) {
  EXPECT_THROW(VideoCatalog::generate("S", 0, 1), droppkt::ContractViolation);
}

TEST(VideoCatalog, OutOfRangeVideoThrows) {
  const auto c = VideoCatalog::generate("S", 3, 1);
  EXPECT_THROW(c.video(3), droppkt::ContractViolation);
}

TEST(GenreToString, AllNamed) {
  EXPECT_EQ(to_string(Genre::kAnimation), "animation");
  EXPECT_EQ(to_string(Genre::kSports), "sports");
  EXPECT_EQ(to_string(Genre::kNews), "news");
  EXPECT_EQ(to_string(Genre::kDrama), "drama");
  EXPECT_EQ(to_string(Genre::kDocumentary), "documentary");
}

}  // namespace
}  // namespace droppkt::has
