#include "has/abr.hpp"

#include <gtest/gtest.h>

#include "util/expect.hpp"
#include "util/rng.hpp"

namespace droppkt::has {
namespace {

QualityLadder ladder() {
  return QualityLadder({{144, 200.0, "144p"},
                        {360, 800.0, "360p"},
                        {480, 1500.0, "480p"},
                        {720, 3000.0, "720p"},
                        {1080, 6000.0, "1080p"}});
}

AbrContext ctx(double buffer_s, double tput, std::size_t cur, bool startup,
               const QualityLadder& l, double capacity = 120.0) {
  return {.buffer_s = buffer_s,
          .buffer_capacity_s = capacity,
          .throughput_kbps = tput,
          .current_quality = cur,
          .startup = startup,
          .ladder = &l};
}

// ---- BufferFillAbr -------------------------------------------------------

TEST(BufferFillAbr, StartupPicksLowest) {
  const auto l = ladder();
  BufferFillAbr abr(5.0, 40.0, 1.0);
  EXPECT_EQ(abr.choose(ctx(0.0, 50000.0, 0, true, l)), 0u);
}

TEST(BufferFillAbr, LowBufferPicksLowest) {
  const auto l = ladder();
  BufferFillAbr abr(5.0, 40.0, 1.0);
  EXPECT_EQ(abr.choose(ctx(3.0, 50000.0, 3, false, l)), 0u);
}

TEST(BufferFillAbr, FullBufferPicksRateCappedMax) {
  const auto l = ladder();
  BufferFillAbr abr(5.0, 40.0, 1.0);
  EXPECT_EQ(abr.choose(ctx(100.0, 50000.0, 0, false, l)), l.highest());
  // Rate cap: 2000 kbps affords only 480p.
  EXPECT_EQ(abr.choose(ctx(100.0, 2000.0, 0, false, l)), 2u);
}

TEST(BufferFillAbr, QualityMonotoneInBuffer) {
  const auto l = ladder();
  BufferFillAbr abr(5.0, 40.0, 2.0);
  std::size_t prev = 0;
  for (double b = 0.0; b <= 60.0; b += 2.0) {
    const auto q = abr.choose(ctx(b, 1e9, 0, false, l));
    EXPECT_GE(q, prev);
    prev = q;
  }
  EXPECT_EQ(prev, l.highest());
}

TEST(BufferFillAbr, ValidatesParameters) {
  EXPECT_THROW(BufferFillAbr(10.0, 5.0, 1.0), droppkt::ContractViolation);
  EXPECT_THROW(BufferFillAbr(0.0, 5.0, 1.0), droppkt::ContractViolation);
  EXPECT_THROW(BufferFillAbr(1.0, 5.0, 0.0), droppkt::ContractViolation);
}

// ---- StickyRateAbr -------------------------------------------------------

TEST(StickyRateAbr, StartupMatchesRate) {
  const auto l = ladder();
  StickyRateAbr abr(1.0, 1.2, 5.0);
  EXPECT_EQ(abr.choose(ctx(0.0, 3200.0, 0, true, l)), 3u);  // 720p
  EXPECT_EQ(abr.choose(ctx(0.0, 100.0, 0, true, l)), 0u);
}

TEST(StickyRateAbr, HoldsQualityWithHealthyBuffer) {
  const auto l = ladder();
  StickyRateAbr abr(1.0, 1.2, 5.0);
  // Throughput collapsed but buffer is fine: hold.
  EXPECT_EQ(abr.choose(ctx(30.0, 300.0, 3, false, l)), 3u);
}

TEST(StickyRateAbr, UpswitchNeedsHysteresisHeadroom) {
  const auto l = ladder();
  StickyRateAbr abr(1.0, 1.2, 5.0);
  // Next level (480p) costs 1500; need 1.2x = 1800.
  EXPECT_EQ(abr.choose(ctx(30.0, 1700.0, 1, false, l)), 1u);
  EXPECT_EQ(abr.choose(ctx(30.0, 1900.0, 1, false, l)), 2u);
}

TEST(StickyRateAbr, PanicStepsDownOneLevel) {
  const auto l = ladder();
  StickyRateAbr abr(1.0, 1.2, 5.0);
  // Buffer below panic, rate only affords 144p: step down one, not all.
  EXPECT_EQ(abr.choose(ctx(2.0, 300.0, 3, false, l)), 2u);
  // At panic but rate affordable: hold.
  EXPECT_EQ(abr.choose(ctx(2.0, 10000.0, 3, false, l)), 3u);
}

TEST(StickyRateAbr, ValidatesParameters) {
  EXPECT_THROW(StickyRateAbr(0.0, 1.2, 5.0), droppkt::ContractViolation);
  EXPECT_THROW(StickyRateAbr(1.0, 0.9, 5.0), droppkt::ContractViolation);
  EXPECT_THROW(StickyRateAbr(1.0, 1.2, -1.0), droppkt::ContractViolation);
}

// ---- HybridAbr -----------------------------------------------------------

TEST(HybridAbr, StartupOneBelowRateTarget) {
  const auto l = ladder();
  HybridAbr abr(1.0, 10.0, 30.0);
  EXPECT_EQ(abr.choose(ctx(0.0, 3500.0, 0, true, l)), 2u);  // target 720p - 1
  EXPECT_EQ(abr.choose(ctx(0.0, 100.0, 0, true, l)), 0u);
}

TEST(HybridAbr, DrainingStepsDown) {
  const auto l = ladder();
  HybridAbr abr(1.0, 10.0, 30.0);
  EXPECT_EQ(abr.choose(ctx(5.0, 400.0, 3, false, l)), 2u);
}

TEST(HybridAbr, ComfortableJumpsToRateTarget) {
  const auto l = ladder();
  HybridAbr abr(1.0, 10.0, 30.0);
  EXPECT_EQ(abr.choose(ctx(50.0, 7000.0, 0, false, l)), l.highest());
}

TEST(HybridAbr, MidBufferStepsTowardTarget) {
  const auto l = ladder();
  HybridAbr abr(1.0, 10.0, 30.0);
  // Target above current: one step up.
  EXPECT_EQ(abr.choose(ctx(20.0, 7000.0, 1, false, l)), 2u);
  // Target below current: drop to target.
  EXPECT_EQ(abr.choose(ctx(20.0, 900.0, 3, false, l)), 1u);
}

TEST(HybridAbr, ValidatesParameters) {
  EXPECT_THROW(HybridAbr(1.0, 30.0, 10.0), droppkt::ContractViolation);
  EXPECT_THROW(HybridAbr(0.0, 10.0, 30.0), droppkt::ContractViolation);
}

// ---- MpcAbr ----------------------------------------------------------------

TEST(MpcAbr, FatLinkHealthyBufferPicksTop) {
  const auto l = ladder();
  MpcAbr abr(4.0);
  EXPECT_EQ(abr.choose(ctx(40.0, 50000.0, 2, false, l)), l.highest());
}

TEST(MpcAbr, ThinLinkPicksLow) {
  const auto l = ladder();
  MpcAbr abr(4.0);
  // 300 kbps cannot sustain anything above the bottom rung; with an empty
  // buffer MPC's stall penalty dominates.
  EXPECT_LE(abr.choose(ctx(1.0, 300.0, 3, false, l)), 1u);
}

TEST(MpcAbr, LargerBufferAffordsHigherQuality) {
  const auto l = ladder();
  MpcAbr abr(4.0);
  // At a rate between rungs, buffer headroom lets MPC risk a higher level.
  const auto starved = abr.choose(ctx(2.0, 1800.0, 2, false, l));
  const auto comfy = abr.choose(ctx(60.0, 1800.0, 2, false, l));
  EXPECT_GE(comfy, starved);
}

TEST(MpcAbr, SwitchPenaltyStabilizes) {
  const auto l = ladder();
  // A huge switching penalty pins the decision to the current level.
  MpcAbr sticky(4.0, 5, 3000.0, 1e6, 0.8);
  EXPECT_EQ(sticky.choose(ctx(30.0, 50000.0, 1, false, l)), 1u);
}

TEST(MpcAbr, ValidatesParameters) {
  EXPECT_THROW(MpcAbr(0.0), droppkt::ContractViolation);
  EXPECT_THROW(MpcAbr(4.0, 0), droppkt::ContractViolation);
  EXPECT_THROW(MpcAbr(4.0, 5, 3000.0, 1.0, 0.0), droppkt::ContractViolation);
}

// ---- Common --------------------------------------------------------------

TEST(AbrFactory, ProducesAllKinds) {
  EXPECT_NE(make_abr(AbrKind::kBufferFill), nullptr);
  EXPECT_NE(make_abr(AbrKind::kStickyRate), nullptr);
  EXPECT_NE(make_abr(AbrKind::kHybrid), nullptr);
  EXPECT_NE(make_abr(AbrKind::kMpc), nullptr);
}

TEST(AbrContext, ValidationCatchesMissingLadder) {
  BufferFillAbr abr(5.0, 40.0, 1.0);
  AbrContext bad{.buffer_s = 0.0,
                 .buffer_capacity_s = 100.0,
                 .throughput_kbps = 0.0,
                 .current_quality = 0,
                 .startup = false,
                 .ladder = nullptr};
  EXPECT_THROW(abr.choose(bad), droppkt::ContractViolation);
}

// Property: every ABR always returns a valid ladder index, whatever the
// context.
class AbrProperty
    : public ::testing::TestWithParam<std::tuple<AbrKind, std::uint64_t>> {};

TEST_P(AbrProperty, AlwaysReturnsValidLevel) {
  const auto l = ladder();
  auto abr = make_abr(std::get<0>(GetParam()));
  util::Rng rng(std::get<1>(GetParam()));
  for (int i = 0; i < 500; ++i) {
    const auto q = abr->choose(ctx(rng.uniform(0.0, 240.0),
                                   rng.uniform(0.0, 1e5),
                                   static_cast<std::size_t>(rng.uniform_int(0, 4)),
                                   rng.bernoulli(0.2), l,
                                   rng.uniform(30.0, 240.0)));
    ASSERT_LE(q, l.highest());
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSeeds, AbrProperty,
    ::testing::Combine(::testing::Values(AbrKind::kBufferFill,
                                         AbrKind::kStickyRate,
                                         AbrKind::kHybrid, AbrKind::kMpc),
                       ::testing::Range<std::uint64_t>(0, 5)));

}  // namespace
}  // namespace droppkt::has
