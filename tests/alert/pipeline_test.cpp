#include "alert/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/dataset_builder.hpp"
#include "engine/engine.hpp"
#include "engine/feed.hpp"
#include "util/expect.hpp"

namespace droppkt::alert {
namespace {

const core::QoeEstimator& trained_estimator() {
  static const core::QoeEstimator est = [] {
    core::DatasetConfig cfg;
    cfg.num_sessions = 200;
    cfg.seed = 17;
    cfg.trace_pool_size = 40;
    cfg.catalog_size = 20;
    core::QoeEstimator e;
    e.train(core::build_dataset(has::svc1_profile(), cfg));
    return e;
  }();
  return est;
}

const engine::Feed& incident_feed() {
  static const engine::Feed feed = [] {
    engine::IncidentFeedConfig cfg;
    cfg.num_locations = 4;
    cfg.degraded_locations = 1;
    cfg.clients_per_location = 4;
    cfg.sessions_per_client = 2;
    cfg.pool_sessions = 8;
    cfg.incident_start_s = 400.0;
    cfg.seed = 99;
    return engine::incident_feed(has::svc1_profile(), cfg);
  }();
  return feed;
}

/// Canonical serialization of the pipeline's observable output: the merged
/// transition stream plus the final alert log, every float at full
/// precision. Bit-identity across shard counts compares these strings.
struct CanonicalRun {
  std::string transitions;
  std::string alerts;
  engine::AlertCounts counts;
  std::uint64_t stats_transitions = 0;
  bool stats_alerting = false;
};

CanonicalRun run_engine(std::size_t shards) {
  CanonicalRun out;
  AlertPipelineConfig cfg;
  cfg.filter.hysteresis_k = 2;
  cfg.filter.min_confidence = 0.4;
  cfg.detector.half_life_s = 300.0;
  cfg.detector.min_effective_sessions = 3.0;
  cfg.detector.alert_rate = 0.35;
  cfg.manager.defaults.raise_rate = 0.35;
  cfg.manager.defaults.clear_rate = 0.2;
  cfg.manager.defaults.clear_cooldown_s = 120.0;
  cfg.on_transition = [&](const VerdictTransition& t,
                          const std::string& location) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s|%s|%d|%d|%.17g|%.17g|%d\n",
                  t.client.c_str(), location.c_str(), t.from_class,
                  t.to_class, t.time_s, t.prev_time_s, t.final_verdict);
    out.transitions += buf;
  };
  AlertPipeline pipeline(cfg);

  engine::EngineConfig ecfg;
  ecfg.num_shards = shards;
  ecfg.monitor.client_idle_timeout_s = 120.0;
  ecfg.monitor.provisional_every = 4;
  ecfg.watermark_interval_s = 15.0;
  ecfg.alert_sink = &pipeline;
  engine::IngestEngine eng(trained_estimator(),
                           [](const core::MonitoredSessionView&) {}, ecfg);
  for (const auto& r : incident_feed()) eng.ingest(r.client, r.txn);
  eng.finish();

  for (const auto& ev : pipeline.log_snapshot()) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%llu|%d|%s|%.17g|%.17g|%.17g|%.17g\n",
                  static_cast<unsigned long long>(ev.id),
                  static_cast<int>(ev.kind), ev.location.c_str(), ev.time_s,
                  ev.rate_low, ev.rate_high, ev.effective_sessions);
    out.alerts += buf;
  }
  out.counts = pipeline.counts();
  const auto snap = eng.stats();
  out.stats_alerting = snap.alerting;
  out.stats_transitions = snap.verdict_transitions;
  return out;
}

TEST(DefaultLocationOf, SplitsOnFirstSlash) {
  EXPECT_EQ(default_location_of("cell-3/sub-17"), "cell-3");
  EXPECT_EQ(default_location_of("cell-3/a/b"), "cell-3");
  EXPECT_EQ(default_location_of("solo"), "solo");
  EXPECT_EQ(default_location_of(""), "");
}

TEST(AlertPipeline, BindExactlyOnce) {
  AlertPipeline pipeline;
  pipeline.bind(2);
  EXPECT_THROW(pipeline.bind(2), droppkt::ContractViolation);
  AlertPipeline unbound;
  EXPECT_THROW(unbound.bind(0), droppkt::ContractViolation);
}

TEST(AlertPipeline, SingleShardEndToEnd) {
  const CanonicalRun run = run_engine(1);
  // The feed produces sessions, so verdicts must have flowed through.
  EXPECT_GT(run.counts.transitions, 0u);
  EXPECT_FALSE(run.transitions.empty());
  EXPECT_TRUE(run.stats_alerting);
  EXPECT_EQ(run.stats_transitions, run.counts.transitions);
  // Every on_transition line corresponds to one counted transition.
  const auto lines = static_cast<std::uint64_t>(
      std::count(run.transitions.begin(), run.transitions.end(), '\n'));
  EXPECT_EQ(lines, run.counts.transitions);
  EXPECT_GE(run.counts.alerts_raised, run.counts.alerts_cleared);
}

TEST(AlertPipeline, AlertSequenceBitIdenticalAcrossShardCounts) {
  const CanonicalRun one = run_engine(1);
  for (const std::size_t shards : {2, 4}) {
    const CanonicalRun n = run_engine(shards);
    EXPECT_EQ(n.transitions, one.transitions) << shards << " shards";
    EXPECT_EQ(n.alerts, one.alerts) << shards << " shards";
    EXPECT_EQ(n.counts.transitions, one.counts.transitions);
    EXPECT_EQ(n.counts.alerts_raised, one.counts.alerts_raised);
    EXPECT_EQ(n.counts.alerts_cleared, one.counts.alerts_cleared);
  }
}


// ---------------------------------------------------------------------------
// Long-feed soak: stale-location eviction must bound detector state
// without perturbing determinism.
// ---------------------------------------------------------------------------

struct SoakResult {
  std::string transitions;
  std::string alerts;
  std::size_t tracked = 0;
  std::size_t evicted = 0;
};

SoakResult run_soak(std::size_t shards, double evict_below_weight) {
  SoakResult out;
  AlertPipelineConfig cfg;
  cfg.filter.hysteresis_k = 1;
  cfg.filter.min_confidence = 0.0;
  cfg.detector.half_life_s = 60.0;
  cfg.detector.min_effective_sessions = 2.0;
  cfg.evict_below_weight = evict_below_weight;
  cfg.on_transition = [&](const VerdictTransition& t,
                          const std::string& location) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%s|%s|%d|%d|%.17g\n", t.client.c_str(),
                  location.c_str(), t.from_class, t.to_class, t.time_s);
    out.transitions += buf;
  };
  AlertPipeline pipeline(cfg);

  // An hour-long feed of one-client locations ("sub-N" has no slash, so
  // each client is its own location): clients start uniformly across the
  // horizon and go quiet after two sessions, so most locations' evidence
  // has fully decayed long before the feed ends.
  engine::SynthFeedConfig fcfg;
  fcfg.num_clients = 150;
  fcfg.sessions_per_client = 2;
  fcfg.txns_per_session = 12;
  fcfg.seed = 31;
  const engine::Feed feed = engine::synthetic_feed(fcfg);

  engine::EngineConfig ecfg;
  ecfg.num_shards = shards;
  ecfg.watermark_interval_s = 15.0;
  ecfg.monitor.materialize_transactions = false;
  ecfg.alert_sink = &pipeline;
  engine::IngestEngine eng(trained_estimator(),
                           [](const core::MonitoredSessionView&) {}, ecfg);
  for (const auto& r : feed) eng.ingest(r.client, r.txn);
  eng.finish();

  for (const auto& ev : pipeline.log_snapshot()) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%llu|%d|%s|%.17g\n",
                  static_cast<unsigned long long>(ev.id),
                  static_cast<int>(ev.kind), ev.location.c_str(), ev.time_s);
    out.alerts += buf;
  }
  out.tracked = pipeline.tracked_locations();
  out.evicted = pipeline.locations_evicted();
  return out;
}

TEST(AlertPipeline, StaleEvictionBoundsDetectorStateOnLongFeeds) {
  const SoakResult off = run_soak(2, 0.0);
  EXPECT_EQ(off.evicted, 0u);
  // Without eviction every location that ever produced a verdict is
  // tracked forever.
  EXPECT_GT(off.tracked, 100u);

  const SoakResult on = run_soak(2, 1e-4);
  EXPECT_GT(on.evicted, 0u);
  EXPECT_LT(on.tracked, off.tracked / 2)
      << "eviction failed to bound tracked locations ("
      << on.tracked << " of " << off.tracked << ")";
  // Eviction changes bookkeeping, not the verdict stream.
  EXPECT_EQ(on.transitions, off.transitions);
}

TEST(AlertPipeline, StaleEvictionPreservesShardCountDeterminism) {
  const SoakResult one = run_soak(1, 1e-4);
  const SoakResult four = run_soak(4, 1e-4);
  EXPECT_EQ(one.transitions, four.transitions);
  EXPECT_EQ(one.alerts, four.alerts);
  EXPECT_EQ(one.tracked, four.tracked);
  EXPECT_EQ(one.evicted, four.evicted);
}

}  // namespace
}  // namespace droppkt::alert
