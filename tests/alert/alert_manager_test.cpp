#include "alert/alert_manager.hpp"

#include <gtest/gtest.h>

#include "util/expect.hpp"

namespace droppkt::alert {
namespace {

LocationWindow win(double low_bound, double high_bound = 1.0,
                   double sessions = 20.0, bool degraded = true) {
  LocationWindow w;
  w.effective_sessions = sessions;
  w.effective_low = low_bound * sessions;
  w.interval = {low_bound, high_bound};
  w.degraded = degraded;
  return w;
}

ManagerConfig cfg(double raise = 0.5, double clear = 0.35,
                  double cooldown = 100.0) {
  ManagerConfig c;
  c.defaults.raise_rate = raise;
  c.defaults.clear_rate = clear;
  c.defaults.clear_cooldown_s = cooldown;
  return c;
}

TEST(AlertManager, RaisesOnCredibleDegradation) {
  AlertManager mgr(cfg());
  EXPECT_EQ(mgr.update("cell", win(0.4), 10.0), nullptr);  // under raise_rate
  const AlertEvent* ev = mgr.update("cell", win(0.7, 0.95), 20.0);
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->kind, AlertEvent::Kind::kRaised);
  EXPECT_EQ(ev->location, "cell");
  EXPECT_EQ(ev->id, 1u);
  EXPECT_EQ(ev->time_s, 20.0);
  EXPECT_EQ(ev->rate_low, 0.7);
  EXPECT_EQ(ev->rate_high, 0.95);
  EXPECT_TRUE(mgr.is_raised("cell"));
  EXPECT_EQ(mgr.open_alerts(), 1u);
  // Staying degraded does not re-raise.
  EXPECT_EQ(mgr.update("cell", win(0.8), 30.0), nullptr);
  EXPECT_EQ(mgr.total_raised(), 1u);
}

TEST(AlertManager, DetectorDegradedFlagIsRequired) {
  AlertManager mgr(cfg());
  // High lower bound but the detector's evidence floor said no.
  EXPECT_EQ(mgr.update("cell", win(0.9, 1.0, 3.0, /*degraded=*/false), 1.0),
            nullptr);
  EXPECT_FALSE(mgr.is_raised("cell"));
}

TEST(AlertManager, ClearRequiresContinuousCooldown) {
  AlertManager mgr(cfg(0.5, 0.35, 100.0));
  ASSERT_NE(mgr.update("cell", win(0.7), 0.0), nullptr);
  // Healthy, but the cooldown has not elapsed yet.
  EXPECT_EQ(mgr.update("cell", win(0.1, 0.4, 20.0, false), 50.0), nullptr);
  EXPECT_TRUE(mgr.is_raised("cell"));
  // A degraded blip resets the cooldown clock.
  EXPECT_EQ(mgr.update("cell", win(0.6), 80.0), nullptr);
  EXPECT_EQ(mgr.update("cell", win(0.1, 0.4, 20.0, false), 120.0), nullptr);
  // 100s after the blip's healthy restart, not after the first healthy look.
  EXPECT_EQ(mgr.update("cell", win(0.1, 0.4, 20.0, false), 170.0), nullptr);
  const AlertEvent* ev =
      mgr.update("cell", win(0.1, 0.4, 20.0, false), 220.0);
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->kind, AlertEvent::Kind::kCleared);
  EXPECT_FALSE(mgr.is_raised("cell"));
  EXPECT_EQ(mgr.open_alerts(), 0u);
  EXPECT_EQ(mgr.total_cleared(), 1u);
}

TEST(AlertManager, MidCooldownRateMustStayUnderClearRate) {
  // Lower bound between clear_rate and raise_rate while raised: neither
  // healthy nor raise-worthy — the alert stays open and cooldown resets.
  AlertManager mgr(cfg(0.5, 0.35, 100.0));
  ASSERT_NE(mgr.update("cell", win(0.7), 0.0), nullptr);
  EXPECT_EQ(mgr.update("cell", win(0.1, 0.4, 20.0, false), 10.0), nullptr);
  EXPECT_EQ(mgr.update("cell", win(0.4, 0.6, 20.0, false), 60.0), nullptr);
  // Healthy again at 70; clear fires at 170, not 110.
  EXPECT_EQ(mgr.update("cell", win(0.1, 0.4, 20.0, false), 70.0), nullptr);
  EXPECT_EQ(mgr.update("cell", win(0.1, 0.4, 20.0, false), 150.0), nullptr);
  EXPECT_NE(mgr.update("cell", win(0.1, 0.4, 20.0, false), 170.0), nullptr);
}

TEST(AlertManager, ZeroCooldownClearsImmediately) {
  AlertManager mgr(cfg(0.5, 0.35, 0.0));
  ASSERT_NE(mgr.update("cell", win(0.7), 0.0), nullptr);
  const AlertEvent* ev =
      mgr.update("cell", win(0.1, 0.4, 20.0, false), 1.0);
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->kind, AlertEvent::Kind::kCleared);
}

TEST(AlertManager, ReRaiseGetsFreshId) {
  AlertManager mgr(cfg(0.5, 0.35, 0.0));
  ASSERT_EQ(mgr.update("cell", win(0.7), 0.0)->id, 1u);
  ASSERT_EQ(mgr.update("cell", win(0.1, 0.4, 20.0, false), 10.0)->id, 2u);
  const AlertEvent* ev = mgr.update("cell", win(0.8), 20.0);
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->kind, AlertEvent::Kind::kRaised);
  EXPECT_EQ(ev->id, 3u);
  EXPECT_EQ(mgr.total_raised(), 2u);
}

TEST(AlertManager, PerServiceThresholdsOverrideDefaults) {
  ManagerConfig c = cfg(0.5, 0.35, 0.0);
  AlertThresholds premium;
  premium.raise_rate = 0.3;
  premium.clear_rate = 0.2;
  premium.clear_cooldown_s = 0.0;
  c.per_service["premium"] = premium;
  c.service_of = [](std::string_view location) {
    return std::string(location.substr(0, location.find(':')));
  };
  AlertManager mgr(std::move(c));
  // 0.4 lower bound: raises the premium location, not the default one.
  EXPECT_NE(mgr.update("premium:cell-1", win(0.4), 1.0), nullptr);
  EXPECT_EQ(mgr.update("basic:cell-1", win(0.4), 1.0), nullptr);
  EXPECT_EQ(mgr.thresholds_for("premium:cell-9").raise_rate, 0.3);
  EXPECT_EQ(mgr.thresholds_for("basic:cell-9").raise_rate, 0.5);
}

TEST(AlertManager, LogIsBoundedWithMonotoneIds) {
  ManagerConfig c = cfg(0.5, 0.35, 0.0);
  c.max_log = 4;
  AlertManager mgr(std::move(c));
  for (int i = 0; i < 3; ++i) {
    ASSERT_NE(mgr.update("cell", win(0.7), i * 10.0), nullptr);
    ASSERT_NE(mgr.update("cell", win(0.1, 0.4, 20.0, false), i * 10.0 + 5.0),
              nullptr);
  }
  const auto& log = mgr.log();
  ASSERT_EQ(log.size(), 4u);  // 6 events, oldest 2 dropped
  EXPECT_EQ(log.front().id, 3u);
  EXPECT_EQ(log.back().id, 6u);
  EXPECT_EQ(mgr.total_raised(), 3u);  // counters survive log truncation
}

TEST(AlertManager, Validates) {
  ManagerConfig inverted = cfg(0.4, 0.5, 10.0);  // clear above raise
  EXPECT_THROW(AlertManager{inverted}, droppkt::ContractViolation);
  ManagerConfig bad_log = cfg();
  bad_log.max_log = 0;
  EXPECT_THROW(AlertManager{bad_log}, droppkt::ContractViolation);
  AlertManager mgr(cfg());
  EXPECT_THROW(mgr.update("", win(0.7), 1.0), droppkt::ContractViolation);
}

}  // namespace
}  // namespace droppkt::alert
