#include "alert/session_filter.hpp"

#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace droppkt::alert {
namespace {

core::ProvisionalEstimate est(std::string_view client, int cls, double conf,
                              double time_s) {
  core::ProvisionalEstimate e;
  e.client = client;
  e.transactions_observed = 8;
  e.predicted_class = cls;
  e.confidence = conf;
  e.session_start_s = 0.0;
  e.last_activity_s = time_s;
  return e;
}

TEST(SessionAlertFilter, NoTransitionBeforeKConsistentEstimates) {
  SessionFilterConfig cfg;
  cfg.hysteresis_k = 3;
  cfg.min_confidence = 0.5;
  SessionAlertFilter filter(cfg);
  EXPECT_FALSE(filter.on_provisional(est("c", 0, 0.9, 1.0)).transition);
  EXPECT_FALSE(filter.on_provisional(est("c", 0, 0.9, 2.0)).transition);
  const auto out = filter.on_provisional(est("c", 0, 0.9, 3.0));
  ASSERT_TRUE(out.transition);
  EXPECT_EQ(out.transition->from_class, kNoVerdict);
  EXPECT_EQ(out.transition->to_class, 0);
  EXPECT_EQ(out.transition->time_s, 3.0);
  EXPECT_FALSE(out.transition->final_verdict);
}

TEST(SessionAlertFilter, BelowConfidenceCarriesNoSignal) {
  SessionFilterConfig cfg;
  cfg.hysteresis_k = 2;
  cfg.min_confidence = 0.6;
  SessionAlertFilter filter(cfg);
  // Unsure estimates never advance a run...
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(filter.on_provisional(est("c", 0, 0.3, i)).transition);
  }
  // ...and never reset one either: confident 0, unsure 2, confident 0.
  EXPECT_FALSE(filter.on_provisional(est("c", 0, 0.9, 20.0)).transition);
  EXPECT_FALSE(filter.on_provisional(est("c", 2, 0.3, 21.0)).transition);
  EXPECT_TRUE(filter.on_provisional(est("c", 0, 0.9, 22.0)).transition);
}

TEST(SessionAlertFilter, DisagreementResetsTheRun) {
  SessionFilterConfig cfg;
  cfg.hysteresis_k = 3;
  SessionAlertFilter filter(cfg);
  EXPECT_FALSE(filter.on_provisional(est("c", 0, 0.9, 1.0)).transition);
  EXPECT_FALSE(filter.on_provisional(est("c", 0, 0.9, 2.0)).transition);
  // A confident disagreeing estimate restarts the count.
  EXPECT_FALSE(filter.on_provisional(est("c", 1, 0.9, 3.0)).transition);
  EXPECT_FALSE(filter.on_provisional(est("c", 0, 0.9, 4.0)).transition);
  EXPECT_FALSE(filter.on_provisional(est("c", 0, 0.9, 5.0)).transition);
  EXPECT_TRUE(filter.on_provisional(est("c", 0, 0.9, 6.0)).transition);
}

TEST(SessionAlertFilter, AgreementWithStableVerdictResetsContraryRun) {
  SessionFilterConfig cfg;
  cfg.hysteresis_k = 2;
  SessionAlertFilter filter(cfg);
  filter.on_provisional(est("c", 0, 0.9, 1.0));
  ASSERT_TRUE(filter.on_provisional(est("c", 0, 0.9, 2.0)).transition);
  // One contrary estimate, then re-agreement with the stable verdict: the
  // contrary run is dead, so a single later contrary estimate cannot flip.
  auto out = filter.on_provisional(est("c", 2, 0.9, 3.0));
  EXPECT_FALSE(out.transition);
  EXPECT_TRUE(out.suppressed);
  EXPECT_FALSE(filter.on_provisional(est("c", 0, 0.9, 4.0)).transition);
  EXPECT_FALSE(filter.on_provisional(est("c", 2, 0.9, 5.0)).transition);
  const auto flip = filter.on_provisional(est("c", 2, 0.9, 6.0));
  ASSERT_TRUE(flip.transition);
  EXPECT_EQ(flip.transition->from_class, 0);
  EXPECT_EQ(flip.transition->to_class, 2);
  // The evidence being superseded was established at t=2.
  EXPECT_EQ(flip.transition->prev_time_s, 2.0);
}

TEST(SessionAlertFilter, FinalVerdictBypassesHysteresisAndForgets) {
  SessionFilterConfig cfg;
  cfg.hysteresis_k = 3;
  SessionAlertFilter filter(cfg);
  // No provisional history at all: still exactly one transition.
  const auto t1 = filter.on_session("fresh", 1, 0.8, 100.0);
  EXPECT_EQ(t1.from_class, kNoVerdict);
  EXPECT_EQ(t1.to_class, 1);
  EXPECT_TRUE(t1.final_verdict);
  EXPECT_EQ(filter.open_clients(), 0u);

  // With a stable provisional verdict: the final verdict re-times it.
  for (double t = 1.0; t <= 3.0; t += 1.0) {
    filter.on_provisional(est("c", 0, 0.9, t));
  }
  EXPECT_EQ(filter.open_clients(), 1u);
  const auto t2 = filter.on_session("c", 0, 0.9, 50.0);
  EXPECT_EQ(t2.from_class, 0);
  EXPECT_EQ(t2.to_class, 0);
  EXPECT_TRUE(t2.final_verdict);
  EXPECT_EQ(t2.time_s, 50.0);
  EXPECT_EQ(t2.prev_time_s, 3.0);
  EXPECT_EQ(filter.open_clients(), 0u);

  // The client was forgotten: its next session starts from no verdict.
  const auto t3 = filter.on_session("c", 2, 0.9, 60.0);
  EXPECT_EQ(t3.from_class, kNoVerdict);
}

TEST(SessionAlertFilter, ClientsAreIndependent) {
  SessionFilterConfig cfg;
  cfg.hysteresis_k = 2;
  SessionAlertFilter filter(cfg);
  filter.on_provisional(est("a", 0, 0.9, 1.0));
  filter.on_provisional(est("b", 2, 0.9, 1.5));
  const auto a = filter.on_provisional(est("a", 0, 0.9, 2.0));
  const auto b = filter.on_provisional(est("b", 2, 0.9, 2.5));
  ASSERT_TRUE(a.transition);
  ASSERT_TRUE(b.transition);
  EXPECT_EQ(a.transition->to_class, 0);
  EXPECT_EQ(b.transition->to_class, 2);
}

// Property: over arbitrary estimate streams, a transition is emitted iff
// the last k confident estimates (ignoring below-floor ones) all carry the
// new class and that class differs from the stable verdict.
TEST(SessionAlertFilter, PropertyTransitionRequiresKConsistentConfident) {
  util::Rng rng(20201204);
  for (int trial = 0; trial < 50; ++trial) {
    SessionFilterConfig cfg;
    cfg.hysteresis_k = static_cast<std::size_t>(rng.uniform_int(1, 4));
    cfg.min_confidence = 0.5;
    SessionAlertFilter filter(cfg);
    int stable = kNoVerdict;
    std::deque<int> confident_tail;  // classes of recent confident estimates
    for (int step = 0; step < 300; ++step) {
      const int cls = static_cast<int>(rng.uniform_int(0, 2));
      const double conf = rng.uniform(0.0, 1.0);
      const auto out =
          filter.on_provisional(est("c", cls, conf, 1.0 + step));
      if (conf >= cfg.min_confidence) {
        confident_tail.push_back(cls);
        if (confident_tail.size() > cfg.hysteresis_k) {
          confident_tail.pop_front();
        }
      }
      if (out.transition) {
        // The emitted flip must be backed by k consecutive confident
        // agreeing estimates, targeting a genuinely new class.
        ASSERT_EQ(confident_tail.size(), cfg.hysteresis_k);
        for (const int c : confident_tail) EXPECT_EQ(c, cls);
        EXPECT_EQ(out.transition->to_class, cls);
        EXPECT_EQ(out.transition->from_class, stable);
        EXPECT_NE(cls, stable);
        stable = cls;
      } else if (conf >= cfg.min_confidence && cls != stable &&
                 stable != kNoVerdict) {
        // Confident disagreement without a flip is hysteresis absorbing it.
        EXPECT_TRUE(out.suppressed);
      }
    }
  }
}

// Property: no single below-confidence estimate ever changes what a
// subsequent confident streak needs to flip the verdict.
TEST(SessionAlertFilter, PropertyUnsureEstimatesAreInert) {
  util::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    SessionFilterConfig cfg;
    cfg.hysteresis_k = static_cast<std::size_t>(rng.uniform_int(2, 3));
    cfg.min_confidence = 0.6;
    SessionAlertFilter with_noise(cfg);
    SessionAlertFilter without_noise(cfg);
    double t = 0.0;
    for (int step = 0; step < 200; ++step) {
      const int cls = static_cast<int>(rng.uniform_int(0, 2));
      const bool noise = rng.uniform(0.0, 1.0) < 0.4;
      t += 1.0;
      if (noise) {
        // Below-floor estimate fed only to one filter.
        const auto out = with_noise.on_provisional(
            est("c", static_cast<int>(rng.uniform_int(0, 2)), 0.2, t));
        EXPECT_FALSE(out.transition);
      } else {
        const auto a = with_noise.on_provisional(est("c", cls, 0.9, t));
        const auto b = without_noise.on_provisional(est("c", cls, 0.9, t));
        EXPECT_EQ(a.transition.has_value(), b.transition.has_value());
        if (a.transition) {
          EXPECT_EQ(a.transition->to_class, b.transition->to_class);
          EXPECT_EQ(a.transition->from_class, b.transition->from_class);
        }
      }
    }
  }
}

TEST(SessionAlertFilter, Validates) {
  SessionFilterConfig bad;
  bad.hysteresis_k = 0;
  EXPECT_THROW(SessionAlertFilter{bad}, droppkt::ContractViolation);
  SessionFilterConfig bad_conf;
  bad_conf.min_confidence = 1.5;
  EXPECT_THROW(SessionAlertFilter{bad_conf}, droppkt::ContractViolation);
}

}  // namespace
}  // namespace droppkt::alert
