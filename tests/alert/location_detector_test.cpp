#include "alert/location_detector.hpp"

#include <gtest/gtest.h>

#include <string>

#include "util/expect.hpp"

namespace droppkt::alert {
namespace {

DetectorConfig decay_cfg(double half_life = 100.0, double min_eff = 0.0) {
  DetectorConfig cfg;
  cfg.window = WindowKind::kDecay;
  cfg.half_life_s = half_life;
  cfg.min_effective_sessions = min_eff;
  return cfg;
}

TEST(LocationDetector, DecayHalvesWeightPerHalfLife) {
  LocationDetector det(decay_cfg(100.0));
  det.observe("cell", 0.0, true);
  EXPECT_NEAR(det.window("cell", 0.0).effective_sessions, 1.0, 1e-12);
  EXPECT_NEAR(det.window("cell", 100.0).effective_sessions, 0.5, 1e-12);
  EXPECT_NEAR(det.window("cell", 200.0).effective_sessions, 0.25, 1e-12);
  EXPECT_NEAR(det.window("cell", 200.0).effective_low, 0.25, 1e-12);
}

TEST(LocationDetector, SlidingWindowExpiresEvents) {
  DetectorConfig cfg;
  cfg.window = WindowKind::kSliding;
  cfg.window_s = 100.0;
  cfg.min_effective_sessions = 0.0;
  LocationDetector det(cfg);
  det.observe("cell", 0.0, true);
  det.observe("cell", 50.0, false);
  EXPECT_NEAR(det.window("cell", 99.0).effective_sessions, 2.0, 1e-12);
  // The t=0 event ages out exactly at t=100 (cutoff is inclusive).
  EXPECT_NEAR(det.window("cell", 100.0).effective_sessions, 1.0, 1e-12);
  EXPECT_NEAR(det.window("cell", 100.0).effective_low, 0.0, 1e-12);
  EXPECT_NEAR(det.window("cell", 151.0).effective_sessions, 0.0, 1e-12);
}

TEST(LocationDetector, RetractionCancelsDecayedEvidenceExactly) {
  LocationDetector det(decay_cfg(100.0));
  det.observe("cell", 0.0, true);
  det.retract("cell", 50.0, /*evidence_time_s=*/0.0, true);
  const auto w = det.window("cell", 50.0);
  EXPECT_NEAR(w.effective_sessions, 0.0, 1e-12);
  EXPECT_NEAR(w.effective_low, 0.0, 1e-12);
  EXPECT_GE(w.effective_sessions, 0.0);  // never negative
}

TEST(LocationDetector, RetractionFlipsVerdictWithoutDoubleCounting) {
  // A session first judged low, later re-judged fine: after retract +
  // re-observe it contributes exactly one (non-low) trial.
  LocationDetector det(decay_cfg(1000.0));
  det.observe("cell", 10.0, true);
  det.retract("cell", 20.0, 10.0, true);
  det.observe("cell", 20.0, false);
  const auto w = det.window("cell", 20.0);
  EXPECT_NEAR(w.effective_sessions, 1.0, 1e-9);
  EXPECT_NEAR(w.effective_low, 0.0, 1e-9);
}

TEST(LocationDetector, RetractingExpiredSlidingEvidenceIsNoop) {
  DetectorConfig cfg;
  cfg.window = WindowKind::kSliding;
  cfg.window_s = 50.0;
  cfg.min_effective_sessions = 0.0;
  LocationDetector det(cfg);
  det.observe("cell", 0.0, true);
  det.observe("cell", 70.0, true);
  det.retract("cell", 80.0, /*evidence_time_s=*/0.0, true);  // already gone
  const auto w = det.window("cell", 80.0);
  EXPECT_NEAR(w.effective_sessions, 1.0, 1e-12);
  EXPECT_NEAR(w.effective_low, 1.0, 1e-12);
}

TEST(LocationDetector, DegradedRequiresCredibleRateNotJustHighRate) {
  DetectorConfig cfg = decay_cfg(1e6, /*min_eff=*/8.0);
  cfg.alert_rate = 0.5;
  LocationDetector det(cfg);
  // 18/20 low within a negligible decay horizon: credibly above 0.5.
  for (int i = 0; i < 20; ++i) det.observe("bad", i, i < 18);
  // 6/10 low: above 0.5 in rate, but the lower bound is not.
  for (int i = 0; i < 10; ++i) det.observe("noisy", i, i < 6);
  EXPECT_TRUE(det.window("bad", 20.0).degraded);
  EXPECT_FALSE(det.window("noisy", 20.0).degraded);
}

TEST(LocationDetector, MinEffectiveSessionsGatesDegraded) {
  DetectorConfig cfg = decay_cfg(1e6, /*min_eff=*/8.0);
  LocationDetector det(cfg);
  // All at t=0 so the effective count is exactly whole: the floor is an
  // inclusive boundary.
  for (int i = 0; i < 7; ++i) det.observe("small", 0.0, true);
  EXPECT_FALSE(det.window("small", 0.0).degraded);
  det.observe("small", 0.0, true);
  EXPECT_TRUE(det.window("small", 0.0).degraded);
  // Decay can push a location back under the floor.
  EXPECT_FALSE(det.window("small", 3e6).degraded);
}

TEST(LocationDetector, DegradedOrderingIsTotal) {
  DetectorConfig cfg = decay_cfg(1e6, /*min_eff=*/5.0);
  LocationDetector det(cfg);
  for (int i = 0; i < 20; ++i) det.observe("b-worse", i, i < 19);
  for (int i = 0; i < 20; ++i) det.observe("c-bad", i, i < 15);
  // Identical evidence to c-bad, alphabetically earlier: name breaks tie.
  for (int i = 0; i < 20; ++i) det.observe("a-bad", i, i < 15);
  const auto out = det.degraded(20.0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].first, "b-worse");
  EXPECT_EQ(out[1].first, "a-bad");
  EXPECT_EQ(out[2].first, "c-bad");
}

TEST(LocationDetector, SnapshotReportsEveryTrackedLocation) {
  LocationDetector det(decay_cfg(100.0));
  det.observe("b", 0.0, true);
  det.observe("a", 1.0, false);
  const auto snap = det.snapshot(2.0);
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "a");  // name order
  EXPECT_EQ(snap[1].first, "b");
  EXPECT_FALSE(snap[0].second.degraded);
}

TEST(LocationDetector, SnapshotAtProjectsDecayWithoutMutating) {
  LocationDetector det(decay_cfg(100.0));
  det.observe("cell", 0.0, true);
  // snapshot_at is a pure evaluation: projecting one half-life into the
  // future halves the weight, and asking again at t=0 still sees the
  // undecayed state.
  const auto future = det.snapshot_at(100.0);
  ASSERT_EQ(future.size(), 1u);
  EXPECT_NEAR(future[0].second.effective_sessions, 0.5, 1e-12);
  const auto now = det.snapshot_at(0.0);
  EXPECT_NEAR(now[0].second.effective_sessions, 1.0, 1e-12);
  // snapshot(t) is the same evaluation.
  EXPECT_NEAR(det.snapshot(100.0)[0].second.effective_sessions, 0.5, 1e-12);
}

TEST(LocationDetector, HorizonCurveTracksProjectedDecay) {
  DetectorConfig cfg = decay_cfg(100.0, /*min_eff=*/2.0);
  cfg.alert_rate = 0.3;
  LocationDetector det(cfg);
  for (int i = 0; i < 10; ++i) det.observe("cell", 0.0, true);
  ASSERT_TRUE(det.window("cell", 0.0).degraded);

  const auto curve = det.horizon_curve("cell", 0.0, 200.0, 3);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_NEAR(curve[0].effective_sessions, 10.0, 1e-9);
  EXPECT_NEAR(curve[1].effective_sessions, 5.0, 1e-9);  // +1 half-life
  EXPECT_NEAR(curve[2].effective_sessions, 2.5, 1e-9);  // +2 half-lives
  // Pure decay of all-low evidence: still degraded until the effective
  // count crosses the floor.
  EXPECT_TRUE(curve[0].degraded);
  EXPECT_TRUE(curve[2].degraded);
  const auto far = det.horizon_curve("cell", 0.0, 2000.0, 2);
  EXPECT_FALSE(far[1].degraded);  // decayed under min_effective_sessions
}

TEST(LocationDetector, HorizonCurveOfUnseenLocationIsVacuous) {
  const LocationDetector det(decay_cfg());
  const auto curve = det.horizon_curve("nowhere", 0.0, 100.0, 4);
  ASSERT_EQ(curve.size(), 4u);
  for (const auto& w : curve) {
    EXPECT_EQ(w.effective_sessions, 0.0);
    EXPECT_FALSE(w.degraded);
  }
}

TEST(LocationDetector, HorizonCurveValidates) {
  LocationDetector det(decay_cfg());
  det.observe("cell", 0.0, true);
  EXPECT_THROW(det.horizon_curve("cell", 0.0, 100.0, 1),
               droppkt::ContractViolation);
  EXPECT_THROW(det.horizon_curve("cell", 0.0, -1.0, 3),
               droppkt::ContractViolation);
}

TEST(LocationDetector, UnseenLocationIsVacuous) {
  const LocationDetector det(decay_cfg());
  const auto w = det.window("nowhere", 10.0);
  EXPECT_EQ(w.effective_sessions, 0.0);
  EXPECT_EQ(w.interval.low, 0.0);
  EXPECT_EQ(w.interval.high, 1.0);
  EXPECT_FALSE(w.degraded);
}

TEST(LocationDetector, EvictStaleDropsDecayedLocations) {
  LocationDetector det(decay_cfg(10.0));
  det.observe("old", 0.0, true);
  det.observe("fresh", 1000.0, true);
  EXPECT_EQ(det.tracked_locations(), 2u);
  EXPECT_EQ(det.evict_stale(1000.0), 1u);
  EXPECT_EQ(det.tracked_locations(), 1u);
  EXPECT_NEAR(det.window("fresh", 1000.0).effective_sessions, 1.0, 1e-12);
}

TEST(LocationDetector, Validates) {
  DetectorConfig bad;
  bad.half_life_s = 0.0;
  EXPECT_THROW(LocationDetector{bad}, droppkt::ContractViolation);
  DetectorConfig bad_rate;
  bad_rate.alert_rate = 1.0;
  EXPECT_THROW(LocationDetector{bad_rate}, droppkt::ContractViolation);
  LocationDetector det(decay_cfg());
  EXPECT_THROW(det.observe("", 0.0, true), droppkt::ContractViolation);
  det.observe("cell", 10.0, true);
  EXPECT_THROW(det.retract("cell", 5.0, 10.0, true),
               droppkt::ContractViolation);
}


TEST(LocationDetector, EvictStaleDropsDecayedLocationsOnly) {
  LocationDetector det(decay_cfg(10.0));
  det.observe("old", 0.0, true);
  det.observe("live", 500.0, true);
  EXPECT_EQ(det.tracked_locations(), 2u);
  // At t=500 "old" has decayed through 50 half-lives; "live" is fresh.
  EXPECT_EQ(det.evict_stale(500.0, 1e-6), 1u);
  EXPECT_EQ(det.tracked_locations(), 1u);
  EXPECT_GT(det.window("live", 500.0).effective_sessions, 0.9);
  // An evicted location that re-appears starts from exactly zero history.
  det.observe("old", 500.0, false);
  EXPECT_NEAR(det.window("old", 500.0).effective_sessions, 1.0, 1e-12);
  EXPECT_NEAR(det.window("old", 500.0).effective_low, 0.0, 1e-12);
}

TEST(LocationDetector, EvictStaleHonorsKeepPredicate) {
  LocationDetector det(decay_cfg(10.0));
  det.observe("pinned", 0.0, true);
  det.observe("doomed", 0.0, true);
  const std::size_t dropped = det.evict_stale(
      1000.0, 1e-6, [](const std::string& loc) { return loc == "pinned"; });
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(det.tracked_locations(), 1u);
  // The survivor is the kept one: its (decayed-to-nothing) state remains
  // visible to snapshots, which is what alert-lifecycle sweeps need.
  EXPECT_EQ(det.snapshot(1000.0).size(), 1u);
  EXPECT_EQ(det.snapshot(1000.0)[0].first, "pinned");
}

}  // namespace
}  // namespace droppkt::alert
