#include "trace/packet_generator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/expect.hpp"

namespace droppkt::trace {
namespace {

has::HttpTransaction txn(double req, double end, double ul, double dl,
                         std::int32_t conn = 0) {
  return {.request_s = req,
          .response_start_s = req + 0.05,
          .response_end_s = end,
          .ul_bytes = ul,
          .dl_bytes = dl,
          .kind = has::HttpKind::kVideoSegment,
          .quality = 0,
          .host = "cdn.example",
          .rtt_s = 0.05,
          .connection_id = conn};
}

net::LinkParams no_loss() {
  net::LinkParams p;
  p.loss_rate = 0.0;
  return p;
}

TEST(PacketGenerator, EmptyLogYieldsNoPackets) {
  const PacketTraceGenerator gen(no_loss());
  util::Rng rng(1);
  EXPECT_TRUE(gen.generate({}, rng).empty());
}

TEST(PacketGenerator, PacketCountMatchesPayload) {
  const PacketTraceGenerator gen(no_loss());
  util::Rng rng(2);
  // 10 * 1448 bytes -> exactly 10 downlink data packets.
  const auto log = gen.generate({txn(0.0, 1.0, 500.0, 14480.0)}, rng);
  std::size_t dl = 0, ul = 0;
  for (const auto& p : log) {
    if (p.dir == Direction::kDownlink) ++dl;
    else ++ul;
  }
  EXPECT_EQ(dl, 10u);
  EXPECT_GT(ul, 0u);  // request + ACKs
}

TEST(PacketGenerator, BytesConserved) {
  const PacketTraceGenerator gen(no_loss());
  util::Rng rng(3);
  const double dl_bytes = 100e3;
  const auto log = gen.generate({txn(0.0, 2.0, 900.0, dl_bytes)}, rng);
  double dl_payload = 0.0, ul_payload = 0.0;
  for (const auto& p : log) {
    if (p.dir == Direction::kDownlink) dl_payload += p.payload_bytes;
    else ul_payload += p.payload_bytes;
  }
  EXPECT_NEAR(dl_payload, dl_bytes, 1.0);
  EXPECT_NEAR(ul_payload, 900.0, 1.0);
}

TEST(PacketGenerator, SortedByTimestamp) {
  const PacketTraceGenerator gen(no_loss());
  util::Rng rng(4);
  const auto log = gen.generate(
      {txn(0.0, 1.0, 500.0, 50e3), txn(0.5, 2.0, 500.0, 80e3, 1)}, rng);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_GE(log[i].ts_s, log[i - 1].ts_s);
  }
}

TEST(PacketGenerator, TimestampsWithinTransactionWindow) {
  const PacketTraceGenerator gen(no_loss());
  util::Rng rng(5);
  const auto log = gen.generate({txn(1.0, 3.0, 500.0, 50e3)}, rng);
  for (const auto& p : log) {
    EXPECT_GE(p.ts_s, 1.0 - 1e-9);
    EXPECT_LE(p.ts_s, 3.0 + 0.01);
  }
}

TEST(PacketGenerator, NoLossMeansNoRetransmissions) {
  const PacketTraceGenerator gen(no_loss());
  util::Rng rng(6);
  const auto log = gen.generate({txn(0.0, 1.0, 500.0, 1e6)}, rng);
  for (const auto& p : log) EXPECT_FALSE(p.retransmission);
}

TEST(PacketGenerator, LossProducesProportionalRetransmissions) {
  net::LinkParams p = no_loss();
  p.loss_rate = 0.05;
  const PacketTraceGenerator gen(p);
  util::Rng rng(7);
  const auto log = gen.generate({txn(0.0, 10.0, 500.0, 10e6)}, rng);
  std::size_t retx = 0, data = 0;
  for (const auto& pk : log) {
    if (pk.dir != Direction::kDownlink) continue;
    if (pk.retransmission) ++retx;
    else ++data;
  }
  EXPECT_NEAR(static_cast<double>(retx) / static_cast<double>(data), 0.05,
              0.01);
}

TEST(PacketGenerator, RetransmissionsArriveLater) {
  net::LinkParams p = no_loss();
  p.loss_rate = 0.3;
  const PacketTraceGenerator gen(p);
  util::Rng rng(8);
  const auto log = gen.generate({txn(0.0, 1.0, 500.0, 100e3)}, rng);
  // Every retransmission timestamp exceeds the original window start.
  for (const auto& pk : log) {
    if (pk.retransmission) {
      EXPECT_GT(pk.ts_s, 0.05);
    }
  }
}

TEST(PacketGenerator, FlowIdFollowsConnectionId) {
  const PacketTraceGenerator gen(no_loss());
  util::Rng rng(9);
  const auto log = gen.generate(
      {txn(0.0, 1.0, 500.0, 10e3, 3), txn(1.5, 2.0, 500.0, 10e3, 7)}, rng);
  std::set<std::uint32_t> flows;
  for (const auto& p : log) flows.insert(p.flow_id);
  EXPECT_EQ(flows, (std::set<std::uint32_t>{3u, 7u}));
}

TEST(PacketGenerator, UnknownConnectionFallsBackToHostHash) {
  const PacketTraceGenerator gen(no_loss());
  util::Rng rng(10);
  auto t = txn(0.0, 1.0, 500.0, 10e3);
  t.connection_id = -1;
  const auto log = gen.generate({t}, rng);
  ASSERT_FALSE(log.empty());
  EXPECT_GE(log.front().flow_id, 0x10000u);
}

TEST(PacketGenerator, MssRespected) {
  PacketGenOptions opts;
  opts.mss_bytes = 1000;
  const PacketTraceGenerator gen(no_loss(), opts);
  util::Rng rng(11);
  const auto log = gen.generate({txn(0.0, 1.0, 500.0, 5500.0)}, rng);
  std::size_t dl = 0;
  for (const auto& p : log) {
    EXPECT_LE(p.payload_bytes, 1000u);
    if (p.dir == Direction::kDownlink) ++dl;
  }
  EXPECT_EQ(dl, 6u);  // ceil(5500/1000)
}

TEST(PacketGenerator, AckPacing) {
  PacketGenOptions opts;
  opts.ack_every = 2;
  const PacketTraceGenerator gen(no_loss(), opts);
  util::Rng rng(12);
  const auto log = gen.generate({txn(0.0, 1.0, 100.0, 14480.0)}, rng);
  std::size_t acks = 0;
  for (const auto& p : log) {
    if (p.dir == Direction::kUplink && p.payload_bytes == 0) ++acks;
  }
  EXPECT_EQ(acks, 5u);  // 10 data packets / 2
}

TEST(PacketGenerator, EstimateMatchesGeneratedCountWithoutLoss) {
  const PacketTraceGenerator gen(no_loss());
  util::Rng rng(13);
  const has::HttpLog http{txn(0.0, 1.0, 2000.0, 333e3),
                          txn(2.0, 3.0, 700.0, 50e3, 1)};
  const auto estimated = gen.estimate_packet_count(http);
  const auto actual = gen.generate(http, rng).size();
  // The estimate over-approximates ACK boundaries slightly.
  EXPECT_NEAR(static_cast<double>(estimated), static_cast<double>(actual),
              4.0);
}

TEST(PacketGenerator, PacketsPerSessionDwarfTlsTransactions) {
  // The paper's core overhead claim: ~1400 packets per TLS transaction.
  const PacketTraceGenerator gen(no_loss());
  util::Rng rng(14);
  // One 5 MB transaction (one TLS connection's worth of video).
  const auto log = gen.generate({txn(0.0, 10.0, 1000.0, 5e6)}, rng);
  EXPECT_GT(log.size(), 1000u);
}

TEST(PacketGenerator, ValidatesOptions) {
  PacketGenOptions bad;
  bad.mss_bytes = 0;
  EXPECT_THROW(PacketTraceGenerator(no_loss(), bad),
               droppkt::ContractViolation);
  bad = {};
  bad.ack_every = 0;
  EXPECT_THROW(PacketTraceGenerator(no_loss(), bad),
               droppkt::ContractViolation);
}

}  // namespace
}  // namespace droppkt::trace
