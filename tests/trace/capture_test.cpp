#include "trace/capture.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "util/expect.hpp"

namespace droppkt::trace {
namespace {

TlsTransaction make_txn(double start, double end, std::string sni) {
  TlsTransaction t;
  t.start_s = start;
  t.end_s = end;
  t.ul_bytes = 800.0;
  t.dl_bytes = 1.2e6;
  t.http_count = 4;
  t.sni = std::move(sni);
  return t;
}

CaptureEvent record(std::string client, double start, double end,
                    std::string sni = "video.example.com") {
  CaptureEvent ev;
  ev.kind = CaptureEvent::Kind::kRecord;
  ev.client = std::move(client);
  ev.txn = make_txn(start, end, std::move(sni));
  return ev;
}

CaptureEvent marker(std::uint64_t seq, double time_s) {
  CaptureEvent ev;
  ev.kind = CaptureEvent::Kind::kMarker;
  ev.marker_seq = seq;
  ev.marker_time_s = time_s;
  return ev;
}

void expect_equal(const FeedCapture& a, const FeedCapture& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].client, b[i].client);
    EXPECT_EQ(a[i].txn.start_s, b[i].txn.start_s);
    EXPECT_EQ(a[i].txn.end_s, b[i].txn.end_s);
    EXPECT_EQ(a[i].txn.ul_bytes, b[i].txn.ul_bytes);
    EXPECT_EQ(a[i].txn.dl_bytes, b[i].txn.dl_bytes);
    EXPECT_EQ(a[i].txn.http_count, b[i].txn.http_count);
    EXPECT_EQ(a[i].txn.sni, b[i].txn.sni);
    EXPECT_EQ(a[i].marker_seq, b[i].marker_seq);
    EXPECT_EQ(a[i].marker_time_s, b[i].marker_time_s);
  }
}

void patch_f64(std::vector<std::uint8_t>& bytes, std::size_t off, double v) {
  ASSERT_LE(off + sizeof v, bytes.size());
  std::memcpy(bytes.data() + off, &v, sizeof v);
}

void patch_u32(std::vector<std::uint8_t>& bytes, std::size_t off,
               std::uint32_t v) {
  ASSERT_LE(off + sizeof v, bytes.size());
  std::memcpy(bytes.data() + off, &v, sizeof v);
}

// One-record capture with client "c": fixed, documented byte offsets.
//   0 magic, 4 version, 8 count, 16 kind, 17 client_len, 21 client,
//   22 start_s, 30 end_s, 38 ul, 46 dl, 54 http, 62 sni_len, 66 sni.
FeedCapture one_record() { return {record("c", 1.0, 2.0, "")}; }

TEST(FeedCaptureFormat, RoundTripEmptyAndMixed) {
  expect_equal(read_feed_capture(feed_capture_bytes({})), {});
  const FeedCapture capture = {marker(0, 0.0), record("loc0/cl0", 0.5, 2.0),
                               record("loc1/cl1", 3.0, 3.0, ""),
                               marker(1, 15.0)};
  expect_equal(read_feed_capture(feed_capture_bytes(capture)), capture);
}

TEST(FeedCaptureFormat, FileRoundTrip) {
  const std::string path = testing::TempDir() + "capture_roundtrip.dpfc";
  const FeedCapture capture = {marker(0, 0.0), record("client-a", 0.0, 4.5)};
  write_feed_capture_file(capture, path);
  expect_equal(read_feed_capture_file(path), capture);
  std::remove(path.c_str());
}

TEST(FeedCaptureFormat, WriterEnforcesFormatLimits) {
  EXPECT_THROW(feed_capture_bytes({record("", 0.0, 1.0)}), ContractViolation);
  EXPECT_THROW(feed_capture_bytes({record(std::string(4097, 'c'), 0.0, 1.0)}),
               ContractViolation);
  EXPECT_THROW(
      feed_capture_bytes(
          {record("c", 0.0, 1.0, std::string(64 * 1024 + 1, 's'))}),
      ContractViolation);
  EXPECT_THROW(feed_capture_bytes(
                   {record("c", std::numeric_limits<double>::quiet_NaN(), 1.0)}),
               ContractViolation);
  CaptureEvent bad_marker = marker(0, std::numeric_limits<double>::infinity());
  EXPECT_THROW(feed_capture_bytes({bad_marker}), ContractViolation);
  // At the limits, not over them: accepted.
  const FeedCapture edge = {
      record(std::string(4096, 'c'), 0.0, 1.0, std::string(64 * 1024, 's'))};
  expect_equal(read_feed_capture(feed_capture_bytes(edge)), edge);
}

TEST(FeedCaptureFormat, RejectsBadMagicVersionAndTrailingBytes) {
  auto bytes = feed_capture_bytes(one_record());
  auto bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(read_feed_capture(bad_magic), ParseError);
  auto bad_version = bytes;
  bad_version[4] = 9;
  EXPECT_THROW(read_feed_capture(bad_version), ParseError);
  auto trailing = bytes;
  trailing.push_back(0);
  EXPECT_THROW(read_feed_capture(trailing), ParseError);
}

TEST(FeedCaptureFormat, RejectsCountAndLengthBombs) {
  auto bytes = feed_capture_bytes(one_record());
  // Event count far beyond what the buffer can hold: rejected before any
  // allocation via the count * min-event-size check.
  auto bomb = bytes;
  const std::uint64_t huge = 0x0FFFFFFFFFFFFFFFull;
  std::memcpy(bomb.data() + 8, &huge, sizeof huge);
  EXPECT_THROW(read_feed_capture(bomb), ParseError);
  auto zero_client = bytes;
  patch_u32(zero_client, 17, 0);
  EXPECT_THROW(read_feed_capture(zero_client), ParseError);
  auto long_client = bytes;
  patch_u32(long_client, 17, 5000);
  EXPECT_THROW(read_feed_capture(long_client), ParseError);
  auto sni_bomb = bytes;
  patch_u32(sni_bomb, 62, 0xFFFFFFFFu);
  EXPECT_THROW(read_feed_capture(sni_bomb), ParseError);
}

TEST(FeedCaptureFormat, RejectsInvalidNumericFields) {
  auto bytes = feed_capture_bytes(one_record());
  auto nan_start = bytes;
  patch_f64(nan_start, 22, std::numeric_limits<double>::quiet_NaN());
  EXPECT_THROW(read_feed_capture(nan_start), ParseError);
  auto backwards = bytes;
  patch_f64(backwards, 30, 0.5);  // end_s < start_s
  EXPECT_THROW(read_feed_capture(backwards), ParseError);
  auto negative_dl = bytes;
  patch_f64(negative_dl, 46, -1.0);
  EXPECT_THROW(read_feed_capture(negative_dl), ParseError);
  auto nan_ul = bytes;
  patch_f64(nan_ul, 38, std::numeric_limits<double>::quiet_NaN());
  EXPECT_THROW(read_feed_capture(nan_ul), ParseError);
  auto bad_kind = bytes;
  bad_kind[16] = 7;
  EXPECT_THROW(read_feed_capture(bad_kind), ParseError);
}

TEST(FeedCaptureFormat, EveryTruncationIsRejected) {
  const auto bytes =
      feed_capture_bytes({marker(0, 0.0), record("cl", 0.0, 1.0)});
  // The header announces the event count, so every strict prefix is a
  // malformed stream — none may crash or be silently accepted.
  for (std::size_t n = 0; n < bytes.size(); ++n) {
    EXPECT_THROW(
        read_feed_capture(std::span<const std::uint8_t>(bytes.data(), n)),
        ParseError)
        << "prefix length " << n;
  }
}

}  // namespace
}  // namespace droppkt::trace
