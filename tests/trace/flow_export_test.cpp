#include "trace/flow_export.hpp"

#include <gtest/gtest.h>

#include "util/expect.hpp"

namespace droppkt::trace {
namespace {

PacketRecord pkt(double ts, Direction dir, std::uint32_t size,
                 std::uint32_t flow = 1) {
  return {.ts_s = ts, .dir = dir, .size_bytes = size,
          .payload_bytes = size > 52 ? size - 52 : 0, .flow_id = flow,
          .retransmission = false, .is_syn = false, .is_fin = false};
}

const std::vector<std::pair<std::uint32_t, std::string>> kIpMap{
    {1u, "203.0.1.1"}, {2u, "203.0.2.2"}};

TEST(FlowExporter, EmptyPacketsNoFlows) {
  const FlowExporter ex;
  EXPECT_TRUE(ex.export_flows({}, kIpMap).empty());
}

TEST(FlowExporter, SingleFlowAggregates) {
  const FlowExporter ex;
  PacketLog packets{pkt(0.0, Direction::kUplink, 100),
                    pkt(0.5, Direction::kDownlink, 1500),
                    pkt(1.0, Direction::kDownlink, 1500)};
  const auto flows = ex.export_flows(packets, kIpMap);
  ASSERT_EQ(flows.size(), 1u);
  const auto& f = flows[0];
  EXPECT_EQ(f.flow_id, 1u);
  EXPECT_EQ(f.server_ip, "203.0.1.1");
  EXPECT_EQ(f.ul_bytes, 100.0);
  EXPECT_EQ(f.dl_bytes, 3000.0);
  EXPECT_EQ(f.ul_packets, 1u);
  EXPECT_EQ(f.dl_packets, 2u);
  EXPECT_EQ(f.first_s, 0.0);
  EXPECT_EQ(f.last_s, 1.0);
}

TEST(FlowExporter, SeparatesFlowIds) {
  const FlowExporter ex;
  PacketLog packets{pkt(0.0, Direction::kDownlink, 1000, 1),
                    pkt(0.1, Direction::kDownlink, 2000, 2)};
  const auto flows = ex.export_flows(packets, kIpMap);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_NE(flows[0].flow_id, flows[1].flow_id);
}

TEST(FlowExporter, InactiveTimeoutCutsRecords) {
  FlowExportConfig cfg;
  cfg.inactive_timeout_s = 5.0;
  cfg.active_timeout_s = 1000.0;
  const FlowExporter ex(cfg);
  PacketLog packets{pkt(0.0, Direction::kDownlink, 1000),
                    pkt(1.0, Direction::kDownlink, 1000),
                    pkt(20.0, Direction::kDownlink, 1000)};  // idle 19 s
  const auto flows = ex.export_flows(packets, kIpMap);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].dl_packets, 2u);
  EXPECT_EQ(flows[1].dl_packets, 1u);
}

TEST(FlowExporter, ActiveTimeoutProducesPeriodicSummaries) {
  FlowExportConfig cfg;
  cfg.active_timeout_s = 10.0;
  cfg.inactive_timeout_s = 1000.0;
  const FlowExporter ex(cfg);
  PacketLog packets;
  for (int i = 0; i < 35; ++i) {
    packets.push_back(pkt(static_cast<double>(i), Direction::kDownlink, 1000));
  }
  const auto flows = ex.export_flows(packets, kIpMap);
  // 35 s of continuous traffic with 10 s cuts -> at least 3 records.
  EXPECT_GE(flows.size(), 3u);
  double total = 0.0;
  for (const auto& f : flows) {
    total += f.dl_bytes;
    EXPECT_LE(f.duration_s(), cfg.active_timeout_s + 1e-9);
  }
  EXPECT_EQ(total, 35000.0);  // bytes conserved across cuts
}

TEST(FlowExporter, UnknownFlowGetsPlaceholderIp) {
  const FlowExporter ex;
  PacketLog packets{pkt(0.0, Direction::kDownlink, 1000, 77)};
  const auto flows = ex.export_flows(packets, kIpMap);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].server_ip, "0.0.0.0");
}

TEST(FlowExporter, SortedOutput) {
  FlowExportConfig cfg;
  cfg.inactive_timeout_s = 2.0;
  const FlowExporter ex(cfg);
  PacketLog packets;
  for (int i = 0; i < 20; ++i) {
    packets.push_back(pkt(i * 3.0, Direction::kDownlink, 500,
                          static_cast<std::uint32_t>(1 + i % 2)));
  }
  const auto flows = ex.export_flows(packets, kIpMap);
  for (std::size_t i = 1; i < flows.size(); ++i) {
    EXPECT_GE(flows[i].first_s, flows[i - 1].first_s);
  }
}

TEST(FlowExporter, RejectsUnsortedPackets) {
  const FlowExporter ex;
  PacketLog packets{pkt(5.0, Direction::kDownlink, 100),
                    pkt(1.0, Direction::kDownlink, 100)};
  EXPECT_THROW(ex.export_flows(packets, kIpMap), droppkt::ContractViolation);
}

TEST(FlowExporter, ValidatesConfig) {
  FlowExportConfig bad;
  bad.active_timeout_s = 0.0;
  EXPECT_THROW(FlowExporter{bad}, droppkt::ContractViolation);
}

TEST(ServerIp, DeterministicAndDistinct) {
  EXPECT_EQ(server_ip_for_host("a.example"), server_ip_for_host("a.example"));
  EXPECT_NE(server_ip_for_host("a.example"), server_ip_for_host("b.example"));
  EXPECT_EQ(server_ip_for_host("x").rfind("203.0.", 0), 0u);
}

TEST(IdentifyVideoFlows, FiltersByDnsSuffix) {
  FlowLog flows;
  FlowRecord video;
  video.server_ip = server_ip_for_host("cdn1.video.example");
  FlowRecord other;
  other.server_ip = server_ip_for_host("mail.elsewhere.example");
  flows.push_back(video);
  flows.push_back(other);

  DnsLog dns{{1.0, "cdn1.video.example", server_ip_for_host("cdn1.video.example")},
             {2.0, "mail.elsewhere.example",
              server_ip_for_host("mail.elsewhere.example")}};

  const auto identified = identify_video_flows(flows, dns, "video.example");
  ASSERT_EQ(identified.size(), 1u);
  EXPECT_EQ(identified[0].server_ip, video.server_ip);
}

TEST(IdentifyVideoFlows, NoDnsNoFlows) {
  FlowLog flows(1);
  EXPECT_TRUE(identify_video_flows(flows, {}, "video.example").empty());
  EXPECT_THROW(identify_video_flows(flows, {}, ""), droppkt::ContractViolation);
}

}  // namespace
}  // namespace droppkt::trace
