#include <cstdint>
#include <cstring>
#include <limits>
#include <span>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "trace/serialize.hpp"
#include "util/expect.hpp"

namespace droppkt::trace {
namespace {

TlsTransaction txn(double start, double end, double ul, double dl,
                   std::size_t http, std::string sni) {
  TlsTransaction t;
  t.start_s = start;
  t.end_s = end;
  t.ul_bytes = ul;
  t.dl_bytes = dl;
  t.http_count = http;
  t.sni = std::move(sni);
  return t;
}

TlsLog sample_log() {
  TlsLog log;
  log.push_back(txn(0.125, 1.5, 900.0, 250000.0, 3, "video.example.com"));
  log.push_back(txn(1.6, 4.25, 1200.5, 1.75e6, 12, ""));
  log.push_back(txn(4.3, 4.3, 0.0, 0.0, 0, "a\tb\nc,d\"e"));
  return log;
}

void expect_logs_equal(const TlsLog& a, const TlsLog& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start_s, b[i].start_s);
    EXPECT_EQ(a[i].end_s, b[i].end_s);
    EXPECT_EQ(a[i].ul_bytes, b[i].ul_bytes);
    EXPECT_EQ(a[i].dl_bytes, b[i].dl_bytes);
    EXPECT_EQ(a[i].http_count, b[i].http_count);
    EXPECT_EQ(a[i].sni, b[i].sni);
  }
}

TEST(TlsBinary, RoundTripIsExact) {
  const TlsLog log = sample_log();
  const auto bytes = tls_binary_bytes(log);
  const TlsLog back = read_tls_binary(std::span<const std::uint8_t>(bytes));
  expect_logs_equal(log, back);
}

TEST(TlsBinary, RoundTripPreservesFullDoublePrecision) {
  // Values that a 6-digit text format would mangle; the binary format
  // must carry them bit-exactly.
  TlsLog log;
  log.push_back(txn(0.1 + 0.2, 1.0 / 3.0, 6.02214076e23, 1.7976931348623157e308,
                    123456789, "x"));
  const auto bytes = tls_binary_bytes(log);
  const TlsLog back = read_tls_binary(std::span<const std::uint8_t>(bytes));
  expect_logs_equal(log, back);
}

TEST(TlsBinary, EmptyLogRoundTrips) {
  const auto bytes = tls_binary_bytes({});
  EXPECT_TRUE(read_tls_binary(std::span<const std::uint8_t>(bytes)).empty());
}

TEST(TlsBinary, StreamRoundTrip) {
  const TlsLog log = sample_log();
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  write_tls_binary(log, ss);
  expect_logs_equal(log, read_tls_binary(ss));
}

TEST(TlsBinary, RejectsBadMagic) {
  auto bytes = tls_binary_bytes(sample_log());
  bytes[0] = 'X';
  EXPECT_THROW(read_tls_binary(std::span<const std::uint8_t>(bytes)),
               ParseError);
}

TEST(TlsBinary, RejectsUnknownVersion) {
  auto bytes = tls_binary_bytes(sample_log());
  bytes[4] = 0xEE;
  EXPECT_THROW(read_tls_binary(std::span<const std::uint8_t>(bytes)),
               ParseError);
}

TEST(TlsBinary, RejectsEveryTruncation) {
  const auto bytes = tls_binary_bytes(sample_log());
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    EXPECT_THROW(
        read_tls_binary(std::span<const std::uint8_t>(bytes.data(), keep)),
        ParseError)
        << "truncation at " << keep << " bytes was accepted";
  }
}

TEST(TlsBinary, RejectsTrailingBytes) {
  auto bytes = tls_binary_bytes(sample_log());
  bytes.push_back(0);
  EXPECT_THROW(read_tls_binary(std::span<const std::uint8_t>(bytes)),
               ParseError);
}

TEST(TlsBinary, RejectsAbsurdRecordCountBeforeAllocating) {
  // Fuzzer-found class (fuzz/regressions/tls_binary/crash-huge-count.bin):
  // a 16-byte input claiming 2^61 records previously reached reserve().
  std::vector<std::uint8_t> bytes = {'D', 'P', 'T', 'L'};
  const std::uint32_t version = 1;
  const std::uint64_t count = std::uint64_t{1} << 61;
  bytes.resize(4 + sizeof version + sizeof count);
  std::memcpy(bytes.data() + 4, &version, sizeof version);
  std::memcpy(bytes.data() + 8, &count, sizeof count);
  EXPECT_THROW(read_tls_binary(std::span<const std::uint8_t>(bytes)),
               ParseError);
}

TEST(TlsBinary, RejectsOversizedSniLength) {
  // A record whose SNI length field points far past the buffer
  // (fuzz/regressions/tls_binary/crash-sni-overread.bin).
  TlsLog log;
  log.push_back(txn(0.0, 1.0, 10.0, 20.0, 2, "ab"));
  auto bytes = tls_binary_bytes(log);
  const std::uint32_t huge = 0xFFFFFFF0u;
  std::memcpy(bytes.data() + bytes.size() - 2 - 4, &huge, sizeof huge);
  EXPECT_THROW(read_tls_binary(std::span<const std::uint8_t>(bytes)),
               ParseError);
}

TEST(TlsBinary, RejectsInvertedTimes) {
  TlsLog log;
  log.push_back(txn(0.0, 1.0, 10.0, 20.0, 1, ""));
  auto bytes = tls_binary_bytes(log);
  // start_s is the first field after the 16-byte header; swap it with a
  // value past end_s.
  const double late = 99.0;
  std::memcpy(bytes.data() + 16, &late, sizeof late);
  EXPECT_THROW(read_tls_binary(std::span<const std::uint8_t>(bytes)),
               ParseError);
}

TEST(TlsBinary, RejectsNonFiniteTimesAndNegativeBytes) {
  TlsLog log;
  log.push_back(txn(0.0, 1.0, 10.0, 20.0, 1, ""));
  {
    auto bytes = tls_binary_bytes(log);
    const double nan = std::numeric_limits<double>::quiet_NaN();
    std::memcpy(bytes.data() + 16, &nan, sizeof nan);
    EXPECT_THROW(read_tls_binary(std::span<const std::uint8_t>(bytes)),
                 ParseError);
  }
  {
    auto bytes = tls_binary_bytes(log);
    const double neg = -5.0;
    std::memcpy(bytes.data() + 16 + 16, &neg, sizeof neg);  // ul_bytes
    EXPECT_THROW(read_tls_binary(std::span<const std::uint8_t>(bytes)),
                 ParseError);
  }
}

TEST(TlsBinaryFile, MissingFileThrows) {
  EXPECT_THROW(read_tls_binary_file("/nonexistent/droppkt.tlsbin"),
               std::runtime_error);
}

}  // namespace
}  // namespace droppkt::trace
