#include "trace/connection_manager.hpp"

#include <gtest/gtest.h>

#include <set>

#include "has/player.hpp"
#include "net/trace_generator.hpp"
#include "util/expect.hpp"

namespace droppkt::trace {
namespace {

has::PlaybackResult simulate(const has::ServiceProfile& svc,
                             std::uint64_t seed = 1, double kbps = 5000.0,
                             double watch = 120.0) {
  const auto trace = net::BandwidthTrace::constant(kbps, 600.0);
  const net::LinkModel link(trace);
  util::Rng rng(seed);
  return has::PlayerSimulator{}.play(
      svc,
      {.id = "v", .genre = has::Genre::kDrama, .duration_s = 3600.0,
       .bitrate_factor = 1.0, .size_variability = 0.1},
      link, watch, rng);
}

TEST(ConnectionManager, PicksRequestedNumberOfHosts) {
  const auto svc = has::svc1_profile();
  util::Rng rng(1);
  const ConnectionManager cm(svc.connections, rng);
  EXPECT_EQ(cm.session_hosts().size(),
            static_cast<std::size_t>(svc.connections.cdn_hosts_per_session));
  std::set<std::string> distinct(cm.session_hosts().begin(),
                                 cm.session_hosts().end());
  EXPECT_EQ(distinct.size(), cm.session_hosts().size());
}

TEST(ConnectionManager, HostsFollowFormat) {
  const auto svc = has::svc2_profile();
  util::Rng rng(2);
  const ConnectionManager cm(svc.connections, rng);
  for (const auto& h : cm.session_hosts()) {
    EXPECT_NE(h.find("svc2films.example"), std::string::npos);
    EXPECT_EQ(h.find("cdn"), 0u);
  }
}

TEST(ConnectionManager, AssignsEveryTransactionAHost) {
  const auto svc = has::svc1_profile();
  auto playback = simulate(svc);
  util::Rng rng(3);
  const ConnectionManager cm(svc.connections, rng);
  cm.collect(playback.http, rng);
  for (const auto& t : playback.http) {
    EXPECT_FALSE(t.host.empty());
    EXPECT_GE(t.connection_id, 0);
  }
}

TEST(ConnectionManager, KindHostMapping) {
  const auto svc = has::svc1_profile();
  auto playback = simulate(svc);
  util::Rng rng(4);
  const ConnectionManager cm(svc.connections, rng);
  cm.collect(playback.http, rng);
  for (const auto& t : playback.http) {
    switch (t.kind) {
      case has::HttpKind::kManifest:
        EXPECT_EQ(t.host, svc.connections.api_host);
        break;
      case has::HttpKind::kBeacon:
        EXPECT_EQ(t.host, svc.connections.beacon_host);
        break;
      case has::HttpKind::kVideoSegment:
      case has::HttpKind::kAudioSegment:
      case has::HttpKind::kInitSegment:
        EXPECT_NE(t.host.find("svc1video"), std::string::npos);
        EXPECT_NE(t.host, svc.connections.api_host);
        EXPECT_NE(t.host, svc.connections.beacon_host);
        break;
      case has::HttpKind::kAsset:
        break;  // assets may go to api or CDN
    }
  }
}

TEST(ConnectionManager, TlsLogSortedAndWellFormed) {
  const auto svc = has::svc1_profile();
  auto playback = simulate(svc);
  util::Rng rng(5);
  const ConnectionManager cm(svc.connections, rng);
  const TlsLog log = cm.collect(playback.http, rng);
  ASSERT_GT(log.size(), 2u);
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_LT(log[i].start_s, log[i].end_s);
    EXPECT_GT(log[i].ul_bytes, 0.0);
    EXPECT_GT(log[i].dl_bytes, 0.0);
    EXPECT_FALSE(log[i].sni.empty());
    if (i > 0) {
      EXPECT_GE(log[i].start_s, log[i - 1].start_s);
    }
  }
}

TEST(ConnectionManager, ConservesBytesPlusHandshakes) {
  const auto svc = has::svc2_profile();
  auto playback = simulate(svc);
  util::Rng rng(6);
  const ConnectionManager cm(svc.connections, rng);
  const TlsLog log = cm.collect(playback.http, rng);
  double http_bytes = 0.0;
  for (const auto& t : playback.http) http_bytes += t.ul_bytes + t.dl_bytes;
  const double handshake_bytes =
      static_cast<double>(log.size()) *
      (svc.connections.handshake_ul_bytes + svc.connections.handshake_dl_bytes);
  EXPECT_NEAR(total_bytes(log), http_bytes + handshake_bytes, 1.0);
}

TEST(ConnectionManager, HttpCountsSumToLogSize) {
  const auto svc = has::svc1_profile();
  auto playback = simulate(svc);
  util::Rng rng(7);
  const ConnectionManager cm(svc.connections, rng);
  const TlsLog log = cm.collect(playback.http, rng);
  std::size_t total_http = 0;
  for (const auto& t : log) total_http += t.http_count;
  EXPECT_EQ(total_http, playback.http.size());
}

TEST(ConnectionManager, RespectsMaxRequestsPerConnection) {
  const auto svc = has::svc1_profile();
  auto playback = simulate(svc, 8, 20000.0, 300.0);
  util::Rng rng(8);
  const ConnectionManager cm(svc.connections, rng);
  const TlsLog log = cm.collect(playback.http, rng);
  for (const auto& t : log) {
    EXPECT_LE(t.http_count, static_cast<std::size_t>(
                                svc.connections.max_requests_per_connection));
  }
}

TEST(ConnectionManager, AggregatesManyHttpPerConnection) {
  // The defining property of coarse TLS data (paper: 12.1 HTTP per TLS
  // transaction for Svc1).
  const auto svc = has::svc1_profile();
  auto playback = simulate(svc, 9, 10000.0, 300.0);
  util::Rng rng(9);
  const ConnectionManager cm(svc.connections, rng);
  const TlsLog log = cm.collect(playback.http, rng);
  const double ratio =
      static_cast<double>(playback.http.size()) / static_cast<double>(log.size());
  EXPECT_GT(ratio, 4.0);
}

TEST(ConnectionManager, ConnectionsLingerPastLastActivity) {
  // Connections close only after the idle timeout — the paper's overlap
  // effect for back-to-back sessions.
  const auto svc = has::svc3_profile();
  auto playback = simulate(svc, 10, 5000.0, 60.0);
  util::Rng rng(10);
  const ConnectionManager cm(svc.connections, rng);
  const TlsLog log = cm.collect(playback.http, rng);
  double last_http_end = 0.0;
  for (const auto& t : playback.http) {
    last_http_end = std::max(last_http_end, t.response_end_s);
  }
  double last_tls_end = 0.0;
  for (const auto& t : log) last_tls_end = std::max(last_tls_end, t.end_s);
  EXPECT_GE(last_tls_end, last_http_end + svc.connections.idle_timeout_s - 1e-6);
}

TEST(ConnectionManager, PreconnectsCdnHostsAtSessionStart) {
  const auto svc = has::svc1_profile();
  auto playback = simulate(svc, 11);
  util::Rng rng(11);
  const ConnectionManager cm(svc.connections, rng);
  const TlsLog log = cm.collect(playback.http, rng);
  const double t0 = playback.http.front().request_s;
  // At least cdn_hosts_per_session connections open within the first second.
  int early = 0;
  for (const auto& t : log) {
    if (t.start_s - t0 <= 1.0) ++early;
  }
  EXPECT_GE(early, svc.connections.cdn_hosts_per_session);
}

TEST(ConnectionManager, OverlappingRequestsUseSeparateConnections) {
  has::ConnectionPolicy policy = has::svc1_profile().connections;
  has::HttpLog http;
  // Two overlapping exchanges to the same (CDN) host.
  for (int i = 0; i < 2; ++i) {
    http.push_back({.request_s = 1.0,
                    .response_start_s = 1.1,
                    .response_end_s = 5.0,
                    .ul_bytes = 100.0,
                    .dl_bytes = 1000.0,
                    .kind = has::HttpKind::kVideoSegment,
                    .quality = 0,
                    .host = {},
                    .rtt_s = 0.05,
                    .connection_id = -1});
  }
  util::Rng rng(12);
  const ConnectionManager cm(policy, rng);
  cm.collect(http, rng);
  EXPECT_NE(http[0].connection_id, http[1].connection_id);
}

TEST(ConnectionManager, HpackCompressesRepeatRequests) {
  has::ConnectionPolicy policy = has::svc2_profile().connections;
  has::HttpLog http;
  // Three strictly sequential manifest requests -> same API-host connection.
  for (int i = 0; i < 3; ++i) {
    http.push_back({.request_s = i * 2.0,
                    .response_start_s = i * 2.0 + 0.1,
                    .response_end_s = i * 2.0 + 0.5,
                    .ul_bytes = 1000.0,
                    .dl_bytes = 5000.0,
                    .kind = has::HttpKind::kManifest,
                    .quality = 0,
                    .host = {},
                    .rtt_s = 0.05,
                    .connection_id = -1});
  }
  util::Rng rng(20);
  const ConnectionManager cm(policy, rng);
  cm.collect(http, rng);
  ASSERT_EQ(http[0].connection_id, http[1].connection_id);
  // First request carries full headers; later ones are HPACK-compressed.
  EXPECT_EQ(http[0].ul_bytes, 1000.0);
  EXPECT_LT(http[1].ul_bytes, 500.0);
  EXPECT_LT(http[2].ul_bytes, 500.0);
}

TEST(ConnectionManager, HpackDoesNotCompressAcrossConnections) {
  has::ConnectionPolicy policy = has::svc2_profile().connections;
  has::HttpLog http;
  // Two requests separated by more than the idle timeout: two connections.
  for (int i = 0; i < 2; ++i) {
    http.push_back({.request_s = i * (policy.idle_timeout_s + 10.0),
                    .response_start_s = i * (policy.idle_timeout_s + 10.0) + 0.1,
                    .response_end_s = i * (policy.idle_timeout_s + 10.0) + 0.5,
                    .ul_bytes = 1000.0,
                    .dl_bytes = 5000.0,
                    .kind = has::HttpKind::kManifest,
                    .quality = 0,
                    .host = {},
                    .rtt_s = 0.05,
                    .connection_id = -1});
  }
  util::Rng rng(21);
  const ConnectionManager cm(policy, rng);
  cm.collect(http, rng);
  EXPECT_NE(http[0].connection_id, http[1].connection_id);
  EXPECT_EQ(http[0].ul_bytes, 1000.0);
  EXPECT_EQ(http[1].ul_bytes, 1000.0);  // fresh connection: full headers
}

TEST(ConnectionManager, ValidatesPolicy) {
  has::ConnectionPolicy bad = has::svc1_profile().connections;
  bad.cdn_hosts_per_session = 0;
  util::Rng rng(13);
  EXPECT_THROW(ConnectionManager(bad, rng), droppkt::ContractViolation);
  bad = has::svc1_profile().connections;
  bad.cdn_pool_size = 1;
  bad.cdn_hosts_per_session = 2;
  EXPECT_THROW(ConnectionManager(bad, rng), droppkt::ContractViolation);
}

TEST(ConnectionManager, EmptyLogYieldsOnlyPreconnects) {
  const auto svc = has::svc3_profile();
  has::HttpLog empty;
  util::Rng rng(14);
  const ConnectionManager cm(svc.connections, rng);
  const TlsLog log = cm.collect(empty, rng);
  EXPECT_TRUE(log.empty());  // preconnects only fire for non-empty sessions
}

}  // namespace
}  // namespace droppkt::trace
