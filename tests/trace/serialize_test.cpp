#include "trace/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "util/expect.hpp"

namespace droppkt::trace {
namespace {

TlsLog sample_log() {
  return {{.start_s = 0.5, .end_s = 10.25, .ul_bytes = 1200.0,
           .dl_bytes = 5e6, .sni = "cdn1.example", .http_count = 12},
          {.start_s = 2.0, .end_s = 4.0, .ul_bytes = 800.0,
           .dl_bytes = 600.0, .sni = "beacon.example", .http_count = 1}};
}

TEST(TlsSerialize, RoundTripStream) {
  const TlsLog log = sample_log();
  std::stringstream ss;
  write_tls_csv(log, ss);
  const TlsLog back = read_tls_csv(ss);
  ASSERT_EQ(back.size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_DOUBLE_EQ(back[i].start_s, log[i].start_s);
    EXPECT_DOUBLE_EQ(back[i].end_s, log[i].end_s);
    EXPECT_DOUBLE_EQ(back[i].ul_bytes, log[i].ul_bytes);
    EXPECT_DOUBLE_EQ(back[i].dl_bytes, log[i].dl_bytes);
    EXPECT_EQ(back[i].sni, log[i].sni);
  }
}

TEST(TlsSerialize, HeaderNamesStable) {
  std::stringstream ss;
  write_tls_csv({}, ss);
  EXPECT_EQ(ss.str(), "start_s,end_s,ul_bytes,dl_bytes,sni\n");
}

TEST(TlsSerialize, RoundTripFile) {
  const std::string path = ::testing::TempDir() + "/droppkt_tls_test.csv";
  write_tls_csv_file(sample_log(), path);
  const TlsLog back = read_tls_csv_file(path);
  EXPECT_EQ(back.size(), 2u);
  std::remove(path.c_str());
}

TEST(TlsSerialize, RejectsEndBeforeStart) {
  std::stringstream ss("start_s,end_s,ul_bytes,dl_bytes,sni\n5,2,1,1,x\n");
  EXPECT_THROW(read_tls_csv(ss), droppkt::ContractViolation);
}

TEST(TlsSerialize, ColumnOrderIndependent) {
  std::stringstream ss("sni,dl_bytes,ul_bytes,end_s,start_s\nhost,100,10,9,1\n");
  const TlsLog log = read_tls_csv(ss);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].sni, "host");
  EXPECT_EQ(log[0].start_s, 1.0);
  EXPECT_EQ(log[0].dl_bytes, 100.0);
}

TEST(TlsSerialize, MissingColumnThrows) {
  std::stringstream ss("start_s,end_s\n1,2\n");
  EXPECT_THROW(read_tls_csv(ss), droppkt::ContractViolation);
}

TEST(TlsSerialize, MissingFileThrows) {
  EXPECT_THROW(read_tls_csv_file("/no/such/file.csv"), std::runtime_error);
}

TEST(TlsSerialize, EmptyInputThrows) {
  std::stringstream ss("");
  EXPECT_THROW(read_tls_csv(ss), droppkt::ParseError);
}

TEST(TlsSerialize, BlankLinesOnlyThrows) {
  std::stringstream ss("\n\n\n");
  EXPECT_THROW(read_tls_csv(ss), droppkt::ParseError);
}

TEST(TlsSerialize, HeaderOnlyYieldsEmptyLog) {
  std::stringstream ss("start_s,end_s,ul_bytes,dl_bytes,sni\n");
  EXPECT_TRUE(read_tls_csv(ss).empty());
}

TEST(TlsSerialize, MalformedRowWidthThrows) {
  // Row has fewer fields than the header.
  std::stringstream ss("start_s,end_s,ul_bytes,dl_bytes,sni\n1,2,3\n");
  EXPECT_THROW(read_tls_csv(ss), droppkt::ParseError);
}

TEST(TlsSerialize, NonNumericCellThrows) {
  std::stringstream ss(
      "start_s,end_s,ul_bytes,dl_bytes,sni\noops,2,1,1,host\n");
  EXPECT_THROW(read_tls_csv(ss), droppkt::ContractViolation);
}

TEST(TlsSerialize, WrongHeaderNamesThrow) {
  std::stringstream ss("begin,finish,up,down,host\n1,2,3,4,x\n");
  EXPECT_THROW(read_tls_csv(ss), droppkt::ContractViolation);
}

TEST(TlsSerialize, QuotedSniWithCommaRoundTrips) {
  TlsLog log = sample_log();
  log[0].sni = "weird,host\"quoted\"";
  std::stringstream ss;
  write_tls_csv(log, ss);
  const TlsLog back = read_tls_csv(ss);
  ASSERT_EQ(back.size(), log.size());
  EXPECT_EQ(back[0].sni, log[0].sni);
}

}  // namespace
}  // namespace droppkt::trace
