#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "engine/feed.hpp"
#include "util/expect.hpp"

namespace droppkt::engine {
namespace {

FeedRecord record(std::string client, double start, double end, double ul,
                  double dl, std::size_t http, std::string sni) {
  FeedRecord r;
  r.client = std::move(client);
  r.txn.start_s = start;
  r.txn.end_s = end;
  r.txn.ul_bytes = ul;
  r.txn.dl_bytes = dl;
  r.txn.http_count = http;
  r.txn.sni = std::move(sni);
  return r;
}

std::string line_of(const FeedRecord& r) {
  std::ostringstream os;
  write_feed_line(r, os);
  std::string s = os.str();
  s.pop_back();  // '\n'
  return s;
}

void expect_records_equal(const FeedRecord& a, const FeedRecord& b) {
  EXPECT_EQ(a.client, b.client);
  EXPECT_EQ(a.txn.start_s, b.txn.start_s);
  EXPECT_EQ(a.txn.end_s, b.txn.end_s);
  EXPECT_EQ(a.txn.ul_bytes, b.txn.ul_bytes);
  EXPECT_EQ(a.txn.dl_bytes, b.txn.dl_bytes);
  EXPECT_EQ(a.txn.http_count, b.txn.http_count);
  EXPECT_EQ(a.txn.sni, b.txn.sni);
}

TEST(FeedLine, RoundTripIsExact) {
  const FeedRecord r =
      record("client-17", 12.25, 14.5, 843.5, 1.25e6, 7, "video.example.com");
  expect_records_equal(r, parse_feed_line(line_of(r)));
}

TEST(FeedLine, RoundTripPreservesFullDoublePrecision) {
  const FeedRecord r = record("c", 0.1 + 0.2, 1.0 / 3.0, 6.02214076e23,
                              1.7976931348623157e308, 999999999, "");
  expect_records_equal(r, parse_feed_line(line_of(r)));
}

TEST(FeedLine, EmptySniAllowed) {
  const FeedRecord r = record("c", 0.0, 1.0, 1.0, 2.0, 1, "");
  expect_records_equal(r, parse_feed_line(line_of(r)));
}

TEST(FeedLine, RejectsWrongFieldCount) {
  EXPECT_THROW(parse_feed_line("only\tthree\tfields"), ParseError);
  EXPECT_THROW(parse_feed_line("c\t0\t1\t0\t0\t0\tsni\textra"), ParseError);
  EXPECT_THROW(parse_feed_line(""), ParseError);
}

TEST(FeedLine, RejectsEmptyClient) {
  EXPECT_THROW(parse_feed_line("\t0\t1\t0\t0\t0\tsni"), ParseError);
}

TEST(FeedLine, RejectsMalformedNumbers) {
  EXPECT_THROW(parse_feed_line("c\tzero\t1\t0\t0\t0\ts"), ParseError);
  EXPECT_THROW(parse_feed_line("c\t0\t1\t0\t0\t3.5\ts"), ParseError);  // count
  EXPECT_THROW(parse_feed_line("c\t0\t1\t0\t0\t-2\ts"), ParseError);
  EXPECT_THROW(parse_feed_line("c\tnan\t1\t0\t0\t0\ts"), ParseError);
  EXPECT_THROW(parse_feed_line("c\t0\tinf\t0\t0\t0\ts"), ParseError);
  EXPECT_THROW(parse_feed_line("c\t0\t1\t0 \t0\t0\ts"), ParseError);
}

TEST(FeedLine, RejectsInvertedWindow) {
  EXPECT_THROW(parse_feed_line("c\t5\t1\t0\t0\t0\ts"), ParseError);
}

TEST(FeedLine, RejectsNegativeByteCounts) {
  EXPECT_THROW(parse_feed_line("c\t0\t1\t-1\t0\t0\ts"), ParseError);
  EXPECT_THROW(parse_feed_line("c\t0\t1\t0\t-1\t0\ts"), ParseError);
}

TEST(FeedLine, AcceptsOneTrailingCarriageReturn) {
  // A \r\n-terminated feed is fine; the \r is not part of the SNI.
  const FeedRecord r = parse_feed_line("c\t0\t1\t0\t0\t0\tsni\r");
  EXPECT_EQ(r.txn.sni, "sni");
}

TEST(FeedLine, RejectsStrayCarriageReturn) {
  // Fuzzer-found (fuzz/regressions/feed_line/crash-trailing-cr.txt): a CR
  // inside the SNI was silently stripped, so the round trip changed the
  // record. Now any interior CR is a typed reject.
  EXPECT_THROW(parse_feed_line("c\t0\t1\t0\t0\t0\tx\r\r"), ParseError);
  EXPECT_THROW(parse_feed_line("c\r\t0\t1\t0\t0\t0\tx"), ParseError);
}

TEST(FeedLine, WriterRejectsUnescapableFields) {
  EXPECT_THROW(line_of(record("tab\tin-client", 0, 1, 0, 0, 0, "s")),
               ContractViolation);
  EXPECT_THROW(line_of(record("c", 0, 1, 0, 0, 0, "new\nline")),
               ContractViolation);
}

TEST(Feed, StreamRoundTrip) {
  Feed feed;
  feed.push_back(record("a", 0.0, 2.0, 800.0, 1.2e6, 4, "v.example.com"));
  feed.push_back(record("b", 0.5, 3.75, 950.25, 2.5e6, 7, ""));
  std::stringstream ss;
  write_feed(feed, ss);
  const Feed back = read_feed(ss);
  ASSERT_EQ(back.size(), feed.size());
  for (std::size_t i = 0; i < feed.size(); ++i) {
    expect_records_equal(feed[i], back[i]);
  }
}

TEST(Feed, ReadSkipsBlankLines) {
  std::istringstream is("\nc\t0\t1\t0\t0\t0\ts\n\n\n");
  EXPECT_EQ(read_feed(is).size(), 1u);
}

TEST(Feed, ReadReportsOneBasedLineNumber) {
  std::istringstream is("c\t0\t1\t0\t0\t0\ts\nbroken line\n");
  try {
    read_feed(is);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace droppkt::engine
