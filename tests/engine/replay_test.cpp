// Record/replay determinism: a DPFC capture replayed through a fresh
// engine must reproduce the live run's alert sequence byte-for-byte and
// its final stats counters exactly — for any shard count, batch size and
// time scale. Pacing (ReplayConfig::time_scale) may only change *when*
// batches are offered to ingest, never which records or their order, so
// the replay output is clock-independent; a ManualClock behind the
// now_ns/sleep_ns seams keeps these tests instant and deterministic.
#include "engine/replay.hpp"

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <string>

#include "alert/pipeline.hpp"
#include "core/dataset_builder.hpp"
#include "engine/engine.hpp"
#include "engine/feed.hpp"
#include "has/service_profile.hpp"
#include "telemetry/clock.hpp"
#include "trace/capture.hpp"
#include "util/expect.hpp"

namespace droppkt::engine {
namespace {

const core::QoeEstimator& shared_estimator() {
  static const core::QoeEstimator* est = [] {
    core::DatasetConfig dcfg;
    dcfg.num_sessions = 600;
    dcfg.seed = 41;
    auto* e = new core::QoeEstimator();
    e->train(core::build_dataset(has::svc1_profile(), dcfg));
    return e;
  }();
  return *est;
}

const Feed& shared_feed() {
  static const Feed* feed = [] {
    IncidentFeedConfig fcfg;
    fcfg.num_locations = 6;
    fcfg.degraded_locations = 2;
    fcfg.clients_per_location = 6;
    fcfg.sessions_per_client = 3;
    fcfg.incident_start_s = 600.0;
    fcfg.seed = 1000;
    return new Feed(incident_feed(has::svc1_profile(), fcfg));
  }();
  return *feed;
}

alert::AlertPipelineConfig alert_config() {
  alert::AlertPipelineConfig acfg;
  acfg.filter.hysteresis_k = 3;
  acfg.filter.min_confidence = 0.5;
  acfg.detector.half_life_s = 600.0;
  acfg.detector.min_effective_sessions = 4.0;
  acfg.detector.alert_rate = 0.35;
  acfg.manager.defaults.raise_rate = 0.35;
  acfg.manager.defaults.clear_rate = 0.2;
  return acfg;
}

EngineConfig engine_config(std::size_t shards, alert::AlertPipeline* sink) {
  EngineConfig ecfg;
  ecfg.num_shards = shards;
  ecfg.monitor.client_idle_timeout_s = 120.0;
  ecfg.monitor.provisional_every = 4;
  ecfg.watermark_interval_s = 15.0;
  ecfg.alert_sink = sink;
  return ecfg;
}

struct RunResult {
  std::string alert_canon;
  EngineStatsSnapshot stats;
};

std::string canon_of(const alert::AlertPipeline& alerts) {
  std::string canon;
  char line[256];
  for (const auto& ev : alerts.log_snapshot()) {
    std::snprintf(
        line, sizeof(line), "%" PRIu64 " %s %s %.17g %.17g %.17g %.17g\n",
        ev.id,
        ev.kind == alert::AlertEvent::Kind::kRaised ? "RAISED" : "CLEARED",
        ev.location.c_str(), ev.time_s, ev.rate_low, ev.rate_high,
        ev.effective_sessions);
    canon += line;
  }
  return canon;
}

RunResult run_live() {
  alert::AlertPipeline alerts(alert_config());
  IngestEngine eng(shared_estimator(),
                   [](const core::MonitoredSessionView&) {},
                   engine_config(2, &alerts));
  for (const auto& r : shared_feed()) eng.ingest(r.client, r.txn);
  eng.finish();
  return {canon_of(alerts), eng.stats()};
}

RunResult run_replay(const trace::FeedCapture& capture, std::size_t shards,
                     double time_scale, std::size_t batch = 256) {
  alert::AlertPipeline alerts(alert_config());
  IngestEngine eng(shared_estimator(),
                   [](const core::MonitoredSessionView&) {},
                   engine_config(shards, &alerts));
  telemetry::ManualClock clock;
  ReplayConfig rcfg;
  rcfg.time_scale = time_scale;
  rcfg.batch = batch;
  rcfg.now_ns = clock.fn();
  rcfg.sleep_ns = [&clock](std::uint64_t ns) { clock.advance(ns); };
  replay_capture(capture, eng, rcfg);
  eng.finish();
  return {canon_of(alerts), eng.stats()};
}

void expect_same_outcome(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.alert_canon, b.alert_canon);
  EXPECT_EQ(a.stats.records_ingested, b.stats.records_ingested);
  EXPECT_EQ(a.stats.records_processed, b.stats.records_processed);
  EXPECT_EQ(a.stats.sessions_reported, b.stats.sessions_reported);
  EXPECT_EQ(a.stats.provisionals_reported, b.stats.provisionals_reported);
  EXPECT_EQ(a.stats.verdict_transitions, b.stats.verdict_transitions);
  EXPECT_EQ(a.stats.alerts_raised, b.stats.alerts_raised);
  EXPECT_EQ(a.stats.alerts_cleared, b.stats.alerts_cleared);
}

TEST(Replay, CaptureInterleavesMarkersAtWatermarkCadence) {
  const trace::FeedCapture capture = capture_feed(shared_feed());
  ASSERT_FALSE(capture.empty());
  // A marker precedes the first record, marker seqs are dense, marker
  // times are non-decreasing, and every record of the feed is present in
  // feed order.
  EXPECT_EQ(capture[0].kind, trace::CaptureEvent::Kind::kMarker);
  std::uint64_t next_marker_seq = 0;
  double last_marker_s = -1e300;
  std::size_t records = 0;
  for (const auto& ev : capture) {
    if (ev.kind == trace::CaptureEvent::Kind::kMarker) {
      EXPECT_EQ(ev.marker_seq, next_marker_seq++);
      EXPECT_GE(ev.marker_time_s, last_marker_s);
      last_marker_s = ev.marker_time_s;
    } else {
      EXPECT_EQ(ev.client, shared_feed()[records].client);
      EXPECT_EQ(ev.txn.start_s, shared_feed()[records].txn.start_s);
      ++records;
    }
  }
  EXPECT_EQ(records, shared_feed().size());
  EXPECT_GE(next_marker_seq, 2u);
}

TEST(Replay, ReproducesLiveAlertSequenceByteForByte) {
  const RunResult live = run_live();
  // A gate that passes vacuously on an alert-free run proves nothing.
  ASSERT_NE(live.alert_canon.find("RAISED"), std::string::npos);

  const trace::FeedCapture capture = capture_feed(shared_feed());
  expect_same_outcome(live, run_replay(capture, 2, /*time_scale=*/1.0));
  expect_same_outcome(live, run_replay(capture, 2, /*time_scale=*/8.0));
}

TEST(Replay, OutcomeIndependentOfShardsBatchAndPacing) {
  const trace::FeedCapture capture = capture_feed(shared_feed());
  const RunResult base = run_replay(capture, 1, /*time_scale=*/0.0);
  expect_same_outcome(base, run_replay(capture, 4, 0.0, /*batch=*/1));
  expect_same_outcome(base, run_replay(capture, 3, 64.0, /*batch=*/7));
}

TEST(Replay, PacingFollowsTheManualClock) {
  const trace::FeedCapture capture = capture_feed(shared_feed());
  telemetry::ManualClock clock;
  alert::AlertPipeline alerts(alert_config());
  IngestEngine eng(shared_estimator(),
                   [](const core::MonitoredSessionView&) {},
                   engine_config(1, &alerts));
  ReplayConfig rcfg;
  rcfg.time_scale = 8.0;
  rcfg.now_ns = clock.fn();
  rcfg.sleep_ns = [&clock](std::uint64_t ns) { clock.advance(ns); };
  std::size_t markers_seen = 0;
  rcfg.on_marker = [&](const trace::CaptureEvent& ev) {
    EXPECT_EQ(ev.kind, trace::CaptureEvent::Kind::kMarker);
    ++markers_seen;
  };
  const ReplayStats rs = replay_capture(capture, eng, rcfg);
  eng.finish();
  EXPECT_EQ(rs.records, shared_feed().size());
  EXPECT_EQ(rs.markers, markers_seen);
  // Processing is instant under the manual clock, so the wall time is
  // exactly the pacing sleeps: the span up to the LAST MARKER compressed
  // by the time scale (records after it, at most one marker interval's
  // worth, are not paced).
  EXPECT_NEAR(rs.wall_seconds, (rs.last_s - rs.first_s) / 8.0,
              /*abs_error=*/15.0 / 8.0);
}

TEST(Replay, ValidatesConfig) {
  const trace::FeedCapture capture = capture_feed(shared_feed());
  alert::AlertPipeline alerts(alert_config());
  IngestEngine eng(shared_estimator(),
                   [](const core::MonitoredSessionView&) {},
                   engine_config(1, &alerts));
  ReplayConfig bad_batch;
  bad_batch.batch = 0;
  EXPECT_THROW(replay_capture(capture, eng, bad_batch), ContractViolation);
  ReplayConfig bad_scale;
  bad_scale.time_scale = -1.0;
  EXPECT_THROW(replay_capture(capture, eng, bad_scale), ContractViolation);
  eng.finish();
}

}  // namespace
}  // namespace droppkt::engine
