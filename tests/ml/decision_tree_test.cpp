#include "ml/decision_tree.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/expect.hpp"
#include "util/rng.hpp"

namespace droppkt::ml {
namespace {

/// Linearly separable 2-class data on one feature.
Dataset separable(std::size_t n = 50) {
  Dataset d({"x", "noise"}, 2);
  util::Rng rng(1);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    d.add_row({x, rng.uniform(0.0, 1.0)}, x < 0.5 ? 0 : 1);
  }
  return d;
}

/// XOR-style data needing depth >= 2.
Dataset xor_data(std::size_t n = 200) {
  Dataset d({"a", "b"}, 2);
  util::Rng rng(2);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = rng.uniform(0.0, 1.0);
    const double b = rng.uniform(0.0, 1.0);
    d.add_row({a, b}, (a < 0.5) != (b < 0.5) ? 1 : 0);
  }
  return d;
}

TEST(DecisionTree, FitsSeparableDataPerfectly) {
  const auto d = separable();
  DecisionTree tree;
  tree.fit(d);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(tree.predict(d.row(i)), d.label(i));
  }
}

TEST(DecisionTree, SolvesXor) {
  const auto d = xor_data();
  DecisionTree tree;
  tree.fit(d);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    correct += tree.predict(d.row(i)) == d.label(i);
  }
  EXPECT_GT(static_cast<double>(correct) / d.size(), 0.97);
  EXPECT_GE(tree.depth(), 2);
}

TEST(DecisionTree, DepthOneIsAStump) {
  const auto d = xor_data();
  DecisionTreeParams p;
  p.max_depth = 1;
  DecisionTree tree(p);
  tree.fit(d);
  EXPECT_LE(tree.depth(), 2);  // root + leaves
  EXPECT_LE(tree.node_count(), 3u);
}

TEST(DecisionTree, PureNodeBecomesLeafImmediately) {
  Dataset d({"x"}, 2);
  for (int i = 0; i < 10; ++i) d.add_row({static_cast<double>(i)}, 0);
  DecisionTree tree;
  tree.fit(d);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict(d.row(0)), 0);
}

TEST(DecisionTree, ConstantFeaturesYieldMajorityLeaf) {
  Dataset d({"x"}, 2);
  for (int i = 0; i < 7; ++i) d.add_row({1.0}, 0);
  for (int i = 0; i < 3; ++i) d.add_row({1.0}, 1);
  DecisionTree tree;
  tree.fit(d);
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict(d.row(0)), 0);
}

TEST(DecisionTree, MinSamplesLeafRespected) {
  const auto d = separable(40);
  DecisionTreeParams p;
  p.min_samples_leaf = 10;
  DecisionTree tree(p);
  tree.fit(d);
  // With min 10 per leaf on 40 rows, at most 4 leaves -> at most 7 nodes.
  EXPECT_LE(tree.node_count(), 7u);
}

TEST(DecisionTree, PredictProbaSumsToOne) {
  const auto d = xor_data(100);
  DecisionTree tree;
  tree.fit(d);
  for (std::size_t i = 0; i < 10; ++i) {
    const auto proba = tree.predict_proba(d.row(i));
    double sum = 0.0;
    for (double p : proba) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(DecisionTree, ImportanceConcentratesOnInformativeFeature) {
  const auto d = separable(200);
  DecisionTree tree;
  tree.fit(d);
  const auto& imp = tree.impurity_decrease();
  ASSERT_EQ(imp.size(), 2u);
  EXPECT_GT(imp[0], 10.0 * imp[1]);  // "x" vastly more important than noise
}

TEST(DecisionTree, FitOnSubsetIgnoresOtherRows) {
  Dataset d({"x"}, 2);
  d.add_row({0.0}, 0);
  d.add_row({1.0}, 1);
  d.add_row({2.0}, 0);  // excluded
  const std::vector<std::size_t> idx{0, 1};
  DecisionTree tree;
  tree.fit_on(d, idx);
  // 2.0 falls on the side of the split containing 1.0.
  EXPECT_EQ(tree.predict(d.row(2)), 1);
}

TEST(DecisionTree, PredictBeforeFitThrows) {
  DecisionTree tree;
  const std::vector<double> x{1.0};
  EXPECT_THROW(tree.predict(x), droppkt::ContractViolation);
}

TEST(DecisionTree, FeatureWidthMismatchThrows) {
  const auto d = separable();
  DecisionTree tree;
  tree.fit(d);
  const std::vector<double> narrow{1.0};
  EXPECT_THROW(tree.predict(narrow), droppkt::ContractViolation);
}

TEST(DecisionTree, EmptyFitThrows) {
  const auto d = separable();
  DecisionTree tree;
  EXPECT_THROW(tree.fit_on(d, {}), droppkt::ContractViolation);
}

TEST(DecisionTree, ValidatesParams) {
  DecisionTreeParams p;
  p.max_depth = 0;
  EXPECT_THROW(DecisionTree{p}, droppkt::ContractViolation);
  p = {};
  p.min_samples_leaf = 0;
  EXPECT_THROW(DecisionTree{p}, droppkt::ContractViolation);
}

TEST(DecisionTree, DeterministicGivenSeed) {
  const auto d = xor_data(100);
  DecisionTreeParams p;
  p.max_features = 1;
  p.seed = 77;
  DecisionTree a(p), b(p);
  a.fit(d);
  b.fit(d);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(a.predict(d.row(i)), b.predict(d.row(i)));
  }
}

TEST(DecisionTree, DuplicateFeatureValuesHandled) {
  // Ties on the split feature: boundaries only between distinct values.
  Dataset d({"x"}, 2);
  for (int i = 0; i < 10; ++i) d.add_row({1.0}, 0);
  for (int i = 0; i < 10; ++i) d.add_row({2.0}, 1);
  DecisionTree tree;
  tree.fit(d);
  const std::vector<double> lo{1.0}, hi{2.0};
  EXPECT_EQ(tree.predict(lo), 0);
  EXPECT_EQ(tree.predict(hi), 1);
}

TEST(DecisionTree, AdjacentDoubleValuesDoNotCrash) {
  // Regression test: midpoint of adjacent doubles can equal the upper
  // value; the split must still produce two non-empty children.
  Dataset d({"x"}, 2);
  const double a = 1.0;
  const double b = std::nextafter(a, 2.0);
  for (int i = 0; i < 5; ++i) d.add_row({a}, 0);
  for (int i = 0; i < 5; ++i) d.add_row({b}, 1);
  DecisionTree tree;
  EXPECT_NO_THROW(tree.fit(d));
  const std::vector<double> xa{a}, xb{b};
  EXPECT_EQ(tree.predict(xa), 0);
  EXPECT_EQ(tree.predict(xb), 1);
}

// Property: training accuracy is always >= majority-class share.
class TreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeProperty, BeatsOrMatchesMajority) {
  util::Rng rng(GetParam());
  Dataset d({"a", "b", "c"}, 3);
  for (int i = 0; i < 100; ++i) {
    d.add_row({rng.normal(), rng.normal(), rng.normal()},
              static_cast<int>(rng.uniform_int(0, 2)));
  }
  DecisionTree tree;
  tree.fit(d);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.size(); ++i) {
    correct += tree.predict(d.row(i)) == d.label(i);
  }
  const auto counts = d.class_counts();
  const std::size_t majority =
      *std::max_element(counts.begin(), counts.end());
  EXPECT_GE(correct, majority);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeProperty,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace droppkt::ml
