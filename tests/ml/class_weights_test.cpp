#include <gtest/gtest.h>

#include "ml/random_forest.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace droppkt::ml {
namespace {

/// Overlapping two-class problem: class 1 is the rare minority.
Dataset imbalanced(std::size_t n, std::uint64_t seed) {
  Dataset d({"x"}, 2);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const bool minority = rng.bernoulli(0.2);
    d.add_row({(minority ? 1.0 : 0.0) + rng.normal(0.0, 0.8)},
              minority ? 1 : 0);
  }
  return d;
}

double minority_recall(const RandomForest& rf, const Dataset& test) {
  std::size_t tp = 0, fn = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    if (test.label(i) != 1) continue;
    if (rf.predict(test.row(i)) == 1) ++tp;
    else ++fn;
  }
  return static_cast<double>(tp) / std::max<std::size_t>(1, tp + fn);
}

TEST(ClassWeights, UpWeightingRaisesMinorityRecall) {
  const auto train = imbalanced(800, 1);
  const auto test = imbalanced(400, 2);

  RandomForestParams plain;
  plain.min_samples_leaf = 10;
  plain.seed = 7;
  RandomForest rf_plain(plain);
  rf_plain.fit(train);

  RandomForestParams weighted = plain;
  weighted.class_weights = {1.0, 6.0};
  RandomForest rf_weighted(weighted);
  rf_weighted.fit(train);

  EXPECT_GT(minority_recall(rf_weighted, test),
            minority_recall(rf_plain, test) + 0.1);
}

TEST(ClassWeights, UniformWeightsMatchUnweighted) {
  const auto d = imbalanced(300, 3);
  RandomForestParams a;
  a.min_samples_leaf = 5;
  a.seed = 4;
  RandomForestParams b = a;
  b.class_weights = {1.0, 1.0};
  RandomForest rf_a(a), rf_b(b);
  rf_a.fit(d);
  rf_b.fit(d);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(rf_a.predict(d.row(i)), rf_b.predict(d.row(i)));
  }
}

TEST(ClassWeights, MissingWeightsDefaultToOne) {
  // Fewer weights than classes: the remainder default to 1.
  Dataset d({"x"}, 3);
  util::Rng rng(5);
  for (int i = 0; i < 90; ++i) {
    const int label = i % 3;
    d.add_row({label + rng.normal(0.0, 0.2)}, label);
  }
  DecisionTreeParams p;
  p.class_weights = {2.0};  // only class 0 specified
  DecisionTree tree(p);
  EXPECT_NO_THROW(tree.fit(d));
  const std::vector<double> x0{0.0}, x2{2.0};
  EXPECT_EQ(tree.predict(x0), 0);
  EXPECT_EQ(tree.predict(x2), 2);
}

TEST(ClassWeights, RejectsNonPositive) {
  DecisionTreeParams p;
  p.class_weights = {1.0, 0.0};
  EXPECT_THROW(DecisionTree{p}, droppkt::ContractViolation);
  p.class_weights = {-1.0};
  EXPECT_THROW(DecisionTree{p}, droppkt::ContractViolation);
}

TEST(ClassWeights, LeafProbabilitiesAreWeighted) {
  // One leaf with 3 majority and 1 minority sample, minority weight 3:
  // weighted probabilities are 50/50.
  Dataset d({"x"}, 2);
  d.add_row({1.0}, 0);
  d.add_row({1.0}, 0);
  d.add_row({1.0}, 0);
  d.add_row({1.0}, 1);
  DecisionTreeParams p;
  p.class_weights = {1.0, 3.0};
  DecisionTree tree(p);
  tree.fit(d);
  const auto probs = tree.predict_proba(d.row(0));
  EXPECT_NEAR(probs[0], 0.5, 1e-9);
  EXPECT_NEAR(probs[1], 0.5, 1e-9);
}

}  // namespace
}  // namespace droppkt::ml
