// Determinism and equivalence guarantees of the parallel ML training
// engine: thread count must never change any result, and the batch
// predictors must agree with their one-row counterparts.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "ml/cross_validation.hpp"
#include "ml/gbt.hpp"
#include "ml/random_forest.hpp"
#include "util/rng.hpp"

namespace droppkt::ml {
namespace {

Dataset make_problem(std::size_t n, std::uint64_t seed) {
  Dataset d({"x0", "x1", "noise0", "noise1", "noise2"}, 3);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(rng.uniform_int(0, 2));
    d.add_row({label + rng.normal(0.0, 0.4), -label + rng.normal(0.0, 0.4),
               rng.normal(), rng.normal(), rng.normal()},
              label);
  }
  return d;
}

std::string fit_and_save(const Dataset& d, std::size_t num_threads,
                         std::optional<double>* oob = nullptr) {
  RandomForestParams p;
  p.num_trees = 24;
  p.seed = 1303;
  p.num_threads = num_threads;
  RandomForest rf(p);
  rf.fit(d);
  if (oob != nullptr) *oob = rf.oob_error();
  std::stringstream ss;
  rf.save(ss);
  return ss.str();
}

TEST(ParallelFit, ForestBitIdenticalForAnyThreadCount) {
  const auto d = make_problem(250, 5);
  std::optional<double> oob1, oob2, oob8;
  const std::string m1 = fit_and_save(d, 1, &oob1);
  const std::string m2 = fit_and_save(d, 2, &oob2);
  const std::string m8 = fit_and_save(d, 8, &oob8);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(m1, m8);
  ASSERT_TRUE(oob1.has_value());
  EXPECT_EQ(*oob1, *oob2);  // exact: merge order is fixed by tree index
  EXPECT_EQ(*oob1, *oob8);
}

TEST(ParallelFit, ImportancesIdenticalForAnyThreadCount) {
  const auto d = make_problem(200, 6);
  RandomForestParams p;
  p.num_trees = 16;
  p.seed = 7;
  p.num_threads = 1;
  RandomForest seq(p);
  seq.fit(d);
  p.num_threads = 4;
  RandomForest par(p);
  par.fit(d);
  const auto a = seq.feature_importances();
  const auto b = par.feature_importances();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t f = 0; f < a.size(); ++f) EXPECT_EQ(a[f], b[f]);
}

TEST(ParallelFit, SaveLoadSaveRoundTripIsByteIdentical) {
  const auto d = make_problem(180, 8);
  RandomForestParams p;
  p.num_trees = 12;
  p.seed = 99;
  RandomForest rf(p);
  rf.fit(d);
  std::stringstream first;
  rf.save(first);
  std::stringstream input(first.str());
  const RandomForest back = RandomForest::load(input);
  std::stringstream second;
  back.save(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(ParallelFit, CrossValidationIdenticalForAnyThreadCount) {
  const auto d = make_problem(150, 9);
  auto factory = [] {
    RandomForestParams p;
    p.num_trees = 10;
    p.seed = 3;
    p.num_threads = 1;
    return std::unique_ptr<Classifier>(new RandomForest(p));
  };
  const auto seq = cross_validate(d, factory, 5, 42, 1);
  const auto par = cross_validate(d, factory, 5, 42, 4);
  EXPECT_EQ(seq.fold_accuracy, par.fold_accuracy);
  EXPECT_EQ(seq.accuracy(), par.accuracy());
  for (int a = 0; a < 3; ++a) {
    for (int b = 0; b < 3; ++b) {
      EXPECT_EQ(seq.pooled.count(a, b), par.pooled.count(a, b));
    }
  }
}

TEST(ParallelFit, ForestBatchPredictMatchesPerRow) {
  const auto train = make_problem(220, 10);
  const auto test = make_problem(90, 11);
  RandomForestParams p;
  p.num_trees = 20;
  p.seed = 5;
  RandomForest rf(p);
  rf.fit(train);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const auto preds = rf.predict_batch(test, threads);
    ASSERT_EQ(preds.size(), test.size());
    std::vector<double> proba(test.size() * 3);
    rf.predict_proba_batch(test, proba, threads);
    for (std::size_t i = 0; i < test.size(); ++i) {
      EXPECT_EQ(preds[i], rf.predict(test.row(i)));
      const auto one = rf.predict_proba(test.row(i));
      for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_EQ(proba[i * 3 + c], one[c]);
      }
    }
  }
}

TEST(ParallelFit, ForestFlatMatrixBatchMatchesDatasetBatch) {
  const auto train = make_problem(150, 12);
  const auto test = make_problem(40, 13);
  RandomForest rf({.num_trees = 10, .max_depth = 24, .min_samples_leaf = 1,
                   .max_features = 0, .seed = 2, .class_weights = {},
                   .num_threads = 2});
  rf.fit(train);

  std::vector<double> matrix;
  matrix.reserve(test.size() * test.num_features());
  for (std::size_t i = 0; i < test.size(); ++i) {
    const auto r = test.row(i);
    matrix.insert(matrix.end(), r.begin(), r.end());
  }
  std::vector<double> from_matrix(test.size() * 3);
  std::vector<double> from_dataset(test.size() * 3);
  rf.predict_proba_batch(matrix, from_matrix, 2);
  rf.predict_proba_batch(test, from_dataset, 1);
  EXPECT_EQ(from_matrix, from_dataset);
}

TEST(ParallelFit, BatchBufferSizeValidated) {
  const auto d = make_problem(50, 14);
  RandomForestParams p;
  p.num_trees = 4;
  RandomForest rf(p);
  rf.fit(d);
  std::vector<double> too_small(d.size() * 3 - 1);
  EXPECT_THROW(rf.predict_proba_batch(d, too_small, 1),
               droppkt::ContractViolation);
  std::vector<double> ragged(7);  // not a multiple of feature width
  std::vector<double> out(3);
  EXPECT_THROW(rf.predict_proba_batch(std::span<const double>(ragged), out, 1),
               droppkt::ContractViolation);
}

TEST(ParallelFit, GbtBatchPredictMatchesPerRow) {
  const auto train = make_problem(160, 15);
  const auto test = make_problem(50, 16);
  GradientBoostingParams p;
  p.num_rounds = 15;
  GradientBoosting gbt(p);
  gbt.fit(train);
  const auto preds = gbt.predict_batch(test, 3);
  std::vector<double> proba(test.size() * 3);
  gbt.predict_proba_batch(test, proba, 3);
  for (std::size_t i = 0; i < test.size(); ++i) {
    EXPECT_EQ(preds[i], gbt.predict(test.row(i)));
    const auto one = gbt.predict_proba(test.row(i));
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(proba[i * 3 + c], one[c]);
    }
  }
}

TEST(ParallelFit, TreeProbaRefViewsLeafDistribution) {
  const auto d = make_problem(100, 17);
  DecisionTree tree;
  tree.fit(d);
  for (std::size_t i = 0; i < 10; ++i) {
    const auto ref = tree.predict_proba_ref(d.row(i));
    const auto copy = tree.predict_proba(d.row(i));
    ASSERT_EQ(ref.size(), copy.size());
    for (std::size_t c = 0; c < ref.size(); ++c) EXPECT_EQ(ref[c], copy[c]);
    // Repeated lookups return the same storage, not fresh copies.
    EXPECT_EQ(ref.data(), tree.predict_proba_ref(d.row(i)).data());
  }
}

TEST(ColumnMatrix, TransposesDataset) {
  const auto d = make_problem(30, 18);
  const ColumnMatrix cols(d);
  EXPECT_EQ(cols.num_rows(), d.size());
  EXPECT_EQ(cols.num_features(), d.num_features());
  for (std::size_t f = 0; f < d.num_features(); ++f) {
    const auto col = cols.column(f);
    ASSERT_EQ(col.size(), d.size());
    for (std::size_t i = 0; i < d.size(); ++i) {
      EXPECT_EQ(col[i], d.row(i)[f]);
      EXPECT_EQ(cols.value(i, f), d.row(i)[f]);
    }
  }
  EXPECT_THROW(cols.column(d.num_features()), droppkt::ContractViolation);
}

TEST(ColumnMatrix, SharedAcrossTreesMatchesPerTreeBuild) {
  const auto d = make_problem(120, 19);
  const ColumnMatrix cols(d);
  std::vector<std::size_t> idx;
  for (std::size_t i = 0; i < d.size(); i += 2) idx.push_back(i);

  DecisionTreeParams p;
  p.seed = 4;
  DecisionTree own(p), shared(p);
  own.fit_on(d, idx);
  shared.fit_on(d, idx, cols);
  std::stringstream a, b;
  own.save(a);
  shared.save(b);
  EXPECT_EQ(a.str(), b.str());
}

}  // namespace
}  // namespace droppkt::ml
