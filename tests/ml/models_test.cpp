// Shared behavioural tests for the comparison models (k-NN, linear SVM,
// gradient boosting, MLP) plus model-specific checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <memory>

#include "ml/gbt.hpp"
#include "ml/knn.hpp"
#include "ml/mlp.hpp"
#include "ml/preprocess.hpp"
#include "ml/svm.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace droppkt::ml {
namespace {

Dataset gaussian_blobs(std::size_t n, std::uint64_t seed, double spread = 0.4) {
  Dataset d({"x", "y"}, 3);
  util::Rng rng(seed);
  const double cx[3] = {0.0, 3.0, 0.0};
  const double cy[3] = {0.0, 0.0, 3.0};
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(rng.uniform_int(0, 2));
    d.add_row({cx[label] + rng.normal(0.0, spread),
               cy[label] + rng.normal(0.0, spread)},
              label);
  }
  return d;
}

struct ModelCase {
  std::string name;
  std::function<std::unique_ptr<Classifier>()> make;
};

class AllModels : public ::testing::TestWithParam<ModelCase> {};

TEST_P(AllModels, LearnsGaussianBlobs) {
  const auto train = gaussian_blobs(300, 1);
  const auto test = gaussian_blobs(200, 2);
  auto model = GetParam().make();
  model->fit(train);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += model->predict(test.row(i)) == test.label(i);
  }
  EXPECT_GT(static_cast<double>(correct) / test.size(), 0.9) << GetParam().name;
}

TEST_P(AllModels, ProbaIsDistribution) {
  const auto train = gaussian_blobs(150, 3);
  auto model = GetParam().make();
  model->fit(train);
  const auto proba = model->predict_proba(train.row(0));
  double sum = 0.0;
  for (double p : proba) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0 + 1e-9);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST_P(AllModels, PredictAllMatchesPredict) {
  const auto train = gaussian_blobs(100, 4);
  auto model = GetParam().make();
  model->fit(train);
  const auto preds = model->predict_all(train);
  ASSERT_EQ(preds.size(), train.size());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(preds[i], model->predict(train.row(i)));
  }
}

TEST_P(AllModels, DeterministicAcrossRuns) {
  const auto train = gaussian_blobs(120, 5);
  auto a = GetParam().make();
  auto b = GetParam().make();
  a->fit(train);
  b->fit(train);
  for (std::size_t i = 0; i < train.size(); ++i) {
    EXPECT_EQ(a->predict(train.row(i)), b->predict(train.row(i)));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Models, AllModels,
    ::testing::Values(
        ModelCase{"knn", [] { return std::unique_ptr<Classifier>(
                                  std::make_unique<KnnClassifier>()); }},
        ModelCase{"svm", [] { return std::unique_ptr<Classifier>(
                                  std::make_unique<LinearSvm>()); }},
        ModelCase{"gbt", [] { return std::unique_ptr<Classifier>(
                                  std::make_unique<GradientBoosting>()); }},
        ModelCase{"mlp", [] { return std::unique_ptr<Classifier>(
                                  std::make_unique<MlpClassifier>()); }}),
    [](const ::testing::TestParamInfo<ModelCase>& param_info) {
      return param_info.param.name;
    });

// ---- Standardizer --------------------------------------------------------

TEST(Standardizer, ZeroMeanUnitVariance) {
  const auto d = gaussian_blobs(500, 6);
  Standardizer s;
  s.fit(d);
  const auto t = s.transform(d);
  for (std::size_t f = 0; f < t.num_features(); ++f) {
    double sum = 0.0, ss = 0.0;
    for (std::size_t i = 0; i < t.size(); ++i) {
      sum += t.row(i)[f];
      ss += t.row(i)[f] * t.row(i)[f];
    }
    const double mean = sum / t.size();
    EXPECT_NEAR(mean, 0.0, 1e-9);
    EXPECT_NEAR(ss / t.size() - mean * mean, 1.0, 1e-6);
  }
}

TEST(Standardizer, ConstantFeaturePassesThrough) {
  Dataset d({"c"}, 2);
  d.add_row({5.0}, 0);
  d.add_row({5.0}, 1);
  Standardizer s;
  s.fit(d);
  EXPECT_EQ(s.transform(d.row(0))[0], 0.0);  // (5-5)/1
}

TEST(Standardizer, TransformBeforeFitThrows) {
  Standardizer s;
  const std::vector<double> x{1.0};
  EXPECT_THROW(s.transform(x), droppkt::ContractViolation);
}

TEST(Standardizer, WidthMismatchThrows) {
  const auto d = gaussian_blobs(10, 7);
  Standardizer s;
  s.fit(d);
  const std::vector<double> narrow{1.0};
  EXPECT_THROW(s.transform(narrow), droppkt::ContractViolation);
}

// ---- k-NN specifics ------------------------------------------------------

TEST(Knn, KOneMemorizesTraining) {
  const auto d = gaussian_blobs(100, 8);
  KnnClassifier knn({.k = 1});
  knn.fit(d);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(knn.predict(d.row(i)), d.label(i));
  }
}

TEST(Knn, ValidatesK) {
  EXPECT_THROW(KnnClassifier({.k = 0}), droppkt::ContractViolation);
}

TEST(Knn, KLargerThanTrainingSetFallsBackGracefully) {
  Dataset d({"x", "y"}, 2);
  d.add_row({0.0, 0.0}, 0);
  d.add_row({1.0, 1.0}, 1);
  KnnClassifier knn({.k = 50});
  knn.fit(d);
  const std::vector<double> q{0.1, 0.1};
  EXPECT_EQ(knn.predict(q), 0);  // distance weighting favours the close one
}

// ---- SVM specifics -------------------------------------------------------

TEST(Svm, DecisionFunctionArgmaxMatchesPredict) {
  const auto d = gaussian_blobs(200, 9);
  LinearSvm svm;
  svm.fit(d);
  for (std::size_t i = 0; i < 20; ++i) {
    const auto m = svm.decision_function(d.row(i));
    const int argmax =
        static_cast<int>(std::max_element(m.begin(), m.end()) - m.begin());
    EXPECT_EQ(argmax, svm.predict(d.row(i)));
  }
}

TEST(Svm, ValidatesParams) {
  LinearSvmParams p;
  p.learning_rate = 0.0;
  EXPECT_THROW(LinearSvm{p}, droppkt::ContractViolation);
  p = {};
  p.epochs = 0;
  EXPECT_THROW(LinearSvm{p}, droppkt::ContractViolation);
}

// ---- Gradient boosting specifics ------------------------------------------

TEST(Gbt, RegressionTreeFitsPiecewiseConstant) {
  Dataset d({"x"}, 2);  // labels unused by the regression tree
  std::vector<double> targets;
  for (int i = 0; i < 20; ++i) {
    d.add_row({static_cast<double>(i)}, 0);
    targets.push_back(i < 10 ? -1.0 : 1.0);
  }
  std::vector<std::size_t> idx(20);
  for (std::size_t i = 0; i < 20; ++i) idx[i] = i;
  RegressionTree tree(3, 1);
  tree.fit(d, targets, idx);
  EXPECT_NEAR(tree.predict(d.row(0)), -1.0, 1e-9);
  EXPECT_NEAR(tree.predict(d.row(19)), 1.0, 1e-9);
}

TEST(Gbt, RegressionTreeLeafValueOverride) {
  Dataset d({"x"}, 2);
  std::vector<double> targets{0.0, 1.0};
  d.add_row({0.0}, 0);
  d.add_row({1.0}, 0);
  RegressionTree tree(2, 1);
  tree.fit(d, targets, std::vector<std::size_t>{0, 1});
  const auto leaf = tree.leaf_id(d.row(0));
  tree.set_leaf_value(leaf, 42.0);
  EXPECT_EQ(tree.predict(d.row(0)), 42.0);
  EXPECT_THROW(tree.set_leaf_value(99, 0.0), droppkt::ContractViolation);
}

TEST(Gbt, ValidatesParams) {
  GradientBoostingParams p;
  p.num_rounds = 0;
  EXPECT_THROW(GradientBoosting{p}, droppkt::ContractViolation);
  p = {};
  p.subsample = 0.0;
  EXPECT_THROW(GradientBoosting{p}, droppkt::ContractViolation);
}

// ---- MLP specifics ---------------------------------------------------------

TEST(Mlp, ValidatesParams) {
  MlpParams p;
  p.hidden_units = 0;
  EXPECT_THROW(MlpClassifier{p}, droppkt::ContractViolation);
  p = {};
  p.batch_size = 0;
  EXPECT_THROW(MlpClassifier{p}, droppkt::ContractViolation);
}

TEST(Mlp, PredictBeforeFitThrows) {
  MlpClassifier mlp;
  const std::vector<double> x{0.0, 0.0};
  EXPECT_THROW(mlp.predict(x), droppkt::ContractViolation);
}

}  // namespace
}  // namespace droppkt::ml
