#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "ml/random_forest.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace droppkt::ml {
namespace {

Dataset make_problem(std::size_t n, std::uint64_t seed) {
  Dataset d({"x0", "x1", "weird,name \"q\""}, 3);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(rng.uniform_int(0, 2));
    d.add_row({label + rng.normal(0.0, 0.4), -label + rng.normal(0.0, 0.4),
               rng.normal()},
              label);
  }
  return d;
}

TEST(TreeSerialization, RoundTripPredictionsIdentical) {
  const auto d = make_problem(200, 1);
  DecisionTree tree;
  tree.fit(d);
  std::stringstream ss;
  tree.save(ss);
  const DecisionTree back = DecisionTree::load(ss);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(back.predict(d.row(i)), tree.predict(d.row(i)));
    EXPECT_EQ(back.predict_proba(d.row(i)), tree.predict_proba(d.row(i)));
  }
  EXPECT_EQ(back.node_count(), tree.node_count());
}

TEST(TreeSerialization, UnfittedSaveThrows) {
  DecisionTree tree;
  std::stringstream ss;
  EXPECT_THROW(tree.save(ss), droppkt::ContractViolation);
}

TEST(TreeSerialization, MalformedInputThrows) {
  // Malformed model files are untrusted input, not programming errors:
  // they raise ParseError.
  std::stringstream bad("nottree 3 2 1\n");
  EXPECT_THROW(DecisionTree::load(bad), droppkt::ParseError);
  std::stringstream truncated("tree 3 2 5\n0 1.5 1 2 0 0\n");
  EXPECT_THROW(DecisionTree::load(truncated), droppkt::ParseError);
}

TEST(ForestSerialization, RoundTripStream) {
  const auto d = make_problem(250, 2);
  RandomForestParams p;
  p.num_trees = 25;
  p.seed = 9;
  RandomForest rf(p);
  rf.fit(d);

  std::stringstream ss;
  rf.save(ss);
  const RandomForest back = RandomForest::load(ss);
  EXPECT_EQ(back.num_trees(), rf.num_trees());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(back.predict(d.row(i)), rf.predict(d.row(i)));
    const auto pa = rf.predict_proba(d.row(i));
    const auto pb = back.predict_proba(d.row(i));
    for (std::size_t c = 0; c < pa.size(); ++c) {
      EXPECT_DOUBLE_EQ(pa[c], pb[c]);
    }
  }
}

TEST(ForestSerialization, FeatureNamesSurviveEscaping) {
  const auto d = make_problem(100, 3);
  RandomForest rf({.num_trees = 5, .max_depth = 8, .min_samples_leaf = 1,
                   .max_features = 0, .seed = 2, .class_weights = {},
                   .num_threads = 0});
  rf.fit(d);
  std::stringstream ss;
  rf.save(ss);
  const RandomForest back = RandomForest::load(ss);
  EXPECT_EQ(back.ranked_importances().size(), 3u);
  // The commas/quotes in the third feature name round-trip intact.
  bool found = false;
  for (const auto& [name, imp] : back.ranked_importances()) {
    if (name == "weird,name \"q\"") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ForestSerialization, RoundTripFile) {
  const auto d = make_problem(120, 4);
  RandomForest rf({.num_trees = 8, .max_depth = 10, .min_samples_leaf = 1,
                   .max_features = 0, .seed = 3, .class_weights = {},
                   .num_threads = 0});
  rf.fit(d);
  const std::string path = ::testing::TempDir() + "/droppkt_rf_test.model";
  rf.save_file(path);
  const RandomForest back = RandomForest::load_file(path);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(back.predict(d.row(i)), rf.predict(d.row(i)));
  }
  std::remove(path.c_str());
}

TEST(ForestSerialization, LoadedForestHasNoOob) {
  const auto d = make_problem(120, 5);
  RandomForest rf;
  rf.fit(d);
  std::stringstream ss;
  rf.save(ss);
  const RandomForest back = RandomForest::load(ss);
  EXPECT_TRUE(rf.oob_error().has_value());
  EXPECT_FALSE(back.oob_error().has_value());
}

TEST(ForestSerialization, BadHeaderThrows) {
  std::stringstream bad("droppkt-rf v99\n3 2 1\n");
  EXPECT_THROW(RandomForest::load(bad), droppkt::ParseError);
}

TEST(ForestSerialization, MissingFileThrows) {
  EXPECT_THROW(RandomForest::load_file("/no/such/model"), std::runtime_error);
}

TEST(ForestSerialization, UnfittedSaveThrows) {
  RandomForest rf;
  std::stringstream ss;
  EXPECT_THROW(rf.save(ss), droppkt::ContractViolation);
}

}  // namespace
}  // namespace droppkt::ml
