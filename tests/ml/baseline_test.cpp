#include "ml/baseline.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/expect.hpp"

namespace droppkt::ml {
namespace {

TEST(MajorityClassifier, PredictsMostFrequent) {
  Dataset d({"x"}, 3);
  d.add_row({0.0}, 1);
  d.add_row({1.0}, 1);
  d.add_row({2.0}, 2);
  MajorityClassifier m;
  m.fit(d);
  const std::vector<double> any{42.0};
  EXPECT_EQ(m.predict(any), 1);
  const auto p = m.predict_proba(any);
  EXPECT_NEAR(p[1], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(p[2], 1.0 / 3.0, 1e-12);
  EXPECT_EQ(p[0], 0.0);
}

TEST(MajorityClassifier, PredictBeforeFitThrows) {
  MajorityClassifier m;
  const std::vector<double> x{1.0};
  EXPECT_THROW(m.predict(x), droppkt::ContractViolation);
}

TEST(MajorityClassifier, EmptyFitThrows) {
  Dataset d({"x"}, 2);
  MajorityClassifier m;
  EXPECT_THROW(m.fit(d), droppkt::ContractViolation);
}

// ---- Dataset CSV round-trip (lives here to keep dataset_test focused). ----

TEST(DatasetCsv, RoundTripExact) {
  Dataset d({"a", "b"}, 3);
  d.add_row({1.5, 54898470.25}, 0);
  d.add_row({-3.25e-7, 0.0}, 2);
  std::stringstream ss;
  d.write_csv(ss);
  const Dataset back = Dataset::read_csv(ss);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back.num_classes(), 3);
  EXPECT_EQ(back.feature_names(), d.feature_names());
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(back.label(i), d.label(i));
    for (std::size_t j = 0; j < d.num_features(); ++j) {
      EXPECT_EQ(back.row(i)[j], d.row(i)[j]);
    }
  }
}

TEST(DatasetCsv, ExplicitNumClasses) {
  Dataset d({"a"}, 5);
  d.add_row({1.0}, 0);
  std::stringstream ss;
  d.write_csv(ss);
  const Dataset back = Dataset::read_csv(ss, 5);
  EXPECT_EQ(back.num_classes(), 5);
}

TEST(DatasetCsv, RejectsMissingLabelColumn) {
  std::stringstream ss("a,b\n1,2\n");
  EXPECT_THROW(Dataset::read_csv(ss), droppkt::ContractViolation);
}

TEST(DatasetCsv, FileRoundTrip) {
  Dataset d({"f"}, 2);
  d.add_row({7.0}, 1);
  const std::string path = ::testing::TempDir() + "/droppkt_ds.csv";
  d.write_csv_file(path);
  const Dataset back = Dataset::read_csv_file(path);
  EXPECT_EQ(back.label(0), 1);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace droppkt::ml
