#include "ml/random_forest.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"
#include "util/rng.hpp"

namespace droppkt::ml {
namespace {

/// Noisy two-informative-feature problem.
Dataset make_problem(std::size_t n, std::uint64_t seed) {
  Dataset d({"x0", "x1", "noise0", "noise1"}, 3);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(rng.uniform_int(0, 2));
    const double x0 = label + rng.normal(0.0, 0.35);
    const double x1 = -label + rng.normal(0.0, 0.35);
    d.add_row({x0, x1, rng.normal(), rng.normal()}, label);
  }
  return d;
}

TEST(RandomForest, LearnsNoisyProblem) {
  const auto train = make_problem(400, 1);
  const auto test = make_problem(200, 2);
  RandomForestParams p;
  p.num_trees = 50;
  RandomForest rf(p);
  rf.fit(train);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += rf.predict(test.row(i)) == test.label(i);
  }
  EXPECT_GT(static_cast<double>(correct) / test.size(), 0.85);
}

TEST(RandomForest, DeterministicGivenSeed) {
  const auto d = make_problem(150, 3);
  RandomForestParams p;
  p.num_trees = 20;
  p.seed = 99;
  RandomForest a(p), b(p);
  a.fit(d);
  b.fit(d);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(a.predict(d.row(i)), b.predict(d.row(i)));
  }
  EXPECT_EQ(a.oob_error(), b.oob_error());
}

TEST(RandomForest, DifferentSeedsDifferentForests) {
  const auto d = make_problem(150, 4);
  RandomForestParams pa, pb;
  pa.seed = 1;
  pb.seed = 2;
  pa.num_trees = pb.num_trees = 10;
  RandomForest a(pa), b(pb);
  a.fit(d);
  b.fit(d);
  const auto ia = a.feature_importances();
  const auto ib = b.feature_importances();
  bool any_diff = false;
  for (std::size_t f = 0; f < ia.size(); ++f) {
    if (std::abs(ia[f] - ib[f]) > 1e-12) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomForest, ProbaSumsToOneAndArgmaxMatchesPredict) {
  const auto d = make_problem(200, 5);
  RandomForest rf({.num_trees = 30, .max_depth = 24, .min_samples_leaf = 1,
                   .max_features = 0, .seed = 42, .class_weights = {},
                   .num_threads = 0});
  rf.fit(d);
  for (std::size_t i = 0; i < 20; ++i) {
    const auto proba = rf.predict_proba(d.row(i));
    double sum = 0.0;
    for (double p : proba) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
    const int argmax = static_cast<int>(
        std::max_element(proba.begin(), proba.end()) - proba.begin());
    EXPECT_EQ(argmax, rf.predict(d.row(i)));
  }
}

TEST(RandomForest, ImportancesNormalizedAndInformative) {
  const auto d = make_problem(400, 6);
  RandomForest rf;
  rf.fit(d);
  const auto imp = rf.feature_importances();
  ASSERT_EQ(imp.size(), 4u);
  double sum = 0.0;
  for (double v : imp) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // Informative features dominate the noise features.
  EXPECT_GT(imp[0] + imp[1], 0.7);
}

TEST(RandomForest, RankedImportancesSortedDescending) {
  const auto d = make_problem(200, 7);
  RandomForest rf;
  rf.fit(d);
  const auto ranked = rf.ranked_importances();
  ASSERT_EQ(ranked.size(), 4u);
  for (std::size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_GE(ranked[i - 1].second, ranked[i].second);
  }
  EXPECT_TRUE(ranked[0].first == "x0" || ranked[0].first == "x1");
}

TEST(RandomForest, OobErrorReasonable) {
  const auto d = make_problem(400, 8);
  RandomForest rf;
  rf.fit(d);
  ASSERT_TRUE(rf.oob_error().has_value());
  EXPECT_LT(*rf.oob_error(), 0.25);
  EXPECT_GE(*rf.oob_error(), 0.0);
}

TEST(RandomForest, MoreTreesNoWorse) {
  const auto train = make_problem(300, 9);
  const auto test = make_problem(300, 10);
  auto eval = [&](std::size_t n_trees) {
    RandomForestParams p;
    p.num_trees = n_trees;
    p.seed = 5;
    RandomForest rf(p);
    rf.fit(train);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
      correct += rf.predict(test.row(i)) == test.label(i);
    }
    return static_cast<double>(correct) / test.size();
  };
  EXPECT_GE(eval(60) + 0.03, eval(3));  // allow small noise
}

TEST(RandomForest, PredictBeforeFitThrows) {
  RandomForest rf;
  const std::vector<double> x{1.0};
  EXPECT_THROW(rf.predict(x), droppkt::ContractViolation);
  EXPECT_THROW(rf.feature_importances(), droppkt::ContractViolation);
}

TEST(RandomForest, ValidatesParams) {
  RandomForestParams p;
  p.num_trees = 0;
  EXPECT_THROW(RandomForest{p}, droppkt::ContractViolation);
}

TEST(RandomForest, TooFewRowsThrows) {
  Dataset d({"x"}, 2);
  d.add_row({0.0}, 0);
  RandomForest rf;
  EXPECT_THROW(rf.fit(d), droppkt::ContractViolation);
}

TEST(RandomForest, RefitReplacesModel) {
  auto d1 = make_problem(100, 11);
  Dataset d2({"x0", "x1", "noise0", "noise1"}, 3);
  for (int i = 0; i < 50; ++i) {
    d2.add_row({0.0, 0.0, 0.0, 0.0}, 2);
    d2.add_row({1.0, 1.0, 0.0, 0.0}, 2);
  }
  RandomForest rf({.num_trees = 10, .max_depth = 8, .min_samples_leaf = 1,
                   .max_features = 0, .seed = 1, .class_weights = {},
                   .num_threads = 0});
  rf.fit(d1);
  rf.fit(d2);  // all class 2 now
  EXPECT_EQ(rf.predict(d2.row(0)), 2);
}

}  // namespace
}  // namespace droppkt::ml
