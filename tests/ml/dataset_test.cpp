#include "ml/dataset.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/expect.hpp"

namespace droppkt::ml {
namespace {

Dataset tiny() {
  Dataset d({"f0", "f1"}, 3);
  d.add_row({1.0, 2.0}, 0);
  d.add_row({3.0, 4.0}, 1);
  d.add_row({5.0, 6.0}, 2);
  d.add_row({7.0, 8.0}, 1);
  return d;
}

TEST(Dataset, BasicAccessors) {
  const auto d = tiny();
  EXPECT_EQ(d.size(), 4u);
  EXPECT_EQ(d.num_features(), 2u);
  EXPECT_EQ(d.num_classes(), 3);
  EXPECT_EQ(d.row(1)[0], 3.0);
  EXPECT_EQ(d.label(2), 2);
}

TEST(Dataset, ClassCounts) {
  const auto d = tiny();
  const auto counts = d.class_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(d.majority_class(), 1);
}

TEST(Dataset, ValidatesConstruction) {
  EXPECT_THROW(Dataset({}, 2), droppkt::ContractViolation);
  EXPECT_THROW(Dataset({"f"}, 0), droppkt::ContractViolation);
}

TEST(Dataset, ValidatesRows) {
  Dataset d({"f0", "f1"}, 2);
  EXPECT_THROW(d.add_row({1.0}, 0), droppkt::ContractViolation);
  EXPECT_THROW(d.add_row({1.0, 2.0}, 2), droppkt::ContractViolation);
  EXPECT_THROW(d.add_row({1.0, 2.0}, -1), droppkt::ContractViolation);
}

TEST(Dataset, OutOfRangeAccessThrows) {
  const auto d = tiny();
  EXPECT_THROW(d.row(4), droppkt::ContractViolation);
  EXPECT_THROW(d.label(4), droppkt::ContractViolation);
}

TEST(Dataset, SubsetSelectsRows) {
  const auto d = tiny();
  const std::vector<std::size_t> idx{2, 0};
  const auto s = d.subset(idx);
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s.row(0)[0], 5.0);
  EXPECT_EQ(s.label(1), 0);
}

TEST(Dataset, SubsetAllowsRepeats) {
  const auto d = tiny();
  const std::vector<std::size_t> idx{1, 1, 1};
  const auto s = d.subset(idx);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.label(2), 1);
}

TEST(Dataset, SelectFeaturesReordersColumns) {
  const auto d = tiny();
  const auto s = d.select_features({"f1", "f0"});
  EXPECT_EQ(s.num_features(), 2u);
  EXPECT_EQ(s.row(0)[0], 2.0);
  EXPECT_EQ(s.row(0)[1], 1.0);
  EXPECT_EQ(s.feature_names()[0], "f1");
}

TEST(Dataset, SelectFeaturesSubset) {
  const auto d = tiny();
  const auto s = d.select_features({"f1"});
  EXPECT_EQ(s.num_features(), 1u);
  EXPECT_EQ(s.row(3)[0], 8.0);
  EXPECT_EQ(s.label(3), d.label(3));
}

TEST(Dataset, SelectUnknownFeatureThrows) {
  const auto d = tiny();
  EXPECT_THROW(d.select_features({"nope"}), droppkt::ContractViolation);
}

TEST(StratifiedFolds, PartitionCoversAllIndices) {
  Dataset d({"x"}, 2);
  for (int i = 0; i < 100; ++i) d.add_row({static_cast<double>(i)}, i % 2);
  util::Rng rng(1);
  const auto folds = stratified_folds(d, 5, rng);
  ASSERT_EQ(folds.size(), 5u);
  std::set<std::size_t> all;
  for (const auto& f : folds) {
    for (auto i : f) {
      EXPECT_TRUE(all.insert(i).second) << "index appears in two folds";
    }
  }
  EXPECT_EQ(all.size(), 100u);
}

TEST(StratifiedFolds, PreservesClassBalance) {
  Dataset d({"x"}, 2);
  // 80/20 imbalance.
  for (int i = 0; i < 100; ++i) d.add_row({static_cast<double>(i)}, i < 80 ? 0 : 1);
  util::Rng rng(2);
  const auto folds = stratified_folds(d, 5, rng);
  for (const auto& f : folds) {
    int minority = 0;
    for (auto i : f) minority += d.label(i);
    EXPECT_EQ(minority, 4);  // exactly 20% of each 20-row fold
  }
}

TEST(StratifiedFolds, FoldSizesBalanced) {
  Dataset d({"x"}, 3);
  for (int i = 0; i < 103; ++i) d.add_row({0.0}, i % 3);
  util::Rng rng(3);
  const auto folds = stratified_folds(d, 5, rng);
  for (const auto& f : folds) {
    EXPECT_GE(f.size(), 19u);
    EXPECT_LE(f.size(), 23u);
  }
}

TEST(StratifiedFolds, Validates) {
  Dataset d({"x"}, 2);
  d.add_row({0.0}, 0);
  util::Rng rng(4);
  EXPECT_THROW(stratified_folds(d, 1, rng), droppkt::ContractViolation);
  EXPECT_THROW(stratified_folds(d, 5, rng), droppkt::ContractViolation);
}

TEST(FoldComplement, Complementary) {
  const std::vector<std::size_t> fold{1, 3};
  const auto rest = fold_complement(5, fold);
  EXPECT_EQ(rest, (std::vector<std::size_t>{0, 2, 4}));
}

TEST(FoldComplement, RejectsOutOfRange) {
  const std::vector<std::size_t> fold{7};
  EXPECT_THROW(fold_complement(5, fold), droppkt::ContractViolation);
}

}  // namespace
}  // namespace droppkt::ml
