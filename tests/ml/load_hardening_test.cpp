// Regression tests for the hostile-model-file classes the fuzzers hit:
// absurd dimensions (allocation bombs), crafted child indices (infinite
// predict loops), and forest/tree dimension mismatches (heap overflow in
// predict_proba_row). Every case must be a typed ParseError, not a crash.
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ml/dataset.hpp"
#include "ml/decision_tree.hpp"
#include "ml/gbt.hpp"
#include "ml/random_forest.hpp"
#include "util/expect.hpp"

namespace droppkt::ml {
namespace {

Dataset tiny_dataset() {
  Dataset data({"a", "b"}, 2);
  data.add_row({0.0, 1.0}, 0);
  data.add_row({0.2, 0.9}, 0);
  data.add_row({0.9, 0.1}, 1);
  data.add_row({1.0, 0.0}, 1);
  data.add_row({0.1, 0.8}, 0);
  data.add_row({0.8, 0.2}, 1);
  return data;
}

TEST(TreeLoadHardening, RejectsHugeNodeCountBeforeAllocating) {
  // fuzz/regressions/model/crash-huge-nodes.txt: the header alone used to
  // drive nodes_.resize(1e18).
  std::istringstream is("tree 2 3 999999999999999999\n");
  EXPECT_THROW(DecisionTree::load(is), ParseError);
}

TEST(TreeLoadHardening, RejectsHugeClassAndFeatureCounts) {
  {
    std::istringstream is("tree 99999999 3 1\n-1 0 -1 -1 0 2 1 0\n");
    EXPECT_THROW(DecisionTree::load(is), ParseError);
  }
  {
    std::istringstream is("tree 2 99999999 1\n-1 0 -1 -1 0 2 1 0\n");
    EXPECT_THROW(DecisionTree::load(is), ParseError);
  }
}

TEST(TreeLoadHardening, RejectsSelfReferentialChild) {
  // fuzz/regressions/model/crash-tree-cycle.txt: node 0's left child is
  // node 0 — pre-fix, descend() span forever. Children must be strictly
  // greater than their parent (the order save() emits).
  std::istringstream is(
      "tree 2 3 3\n"
      "0 0.5 0 2 0 0\n"
      "-1 0 -1 -1 1 2 0 1\n"
      "-1 0 -1 -1 0 2 1 0\n");
  EXPECT_THROW(DecisionTree::load(is), ParseError);
}

TEST(TreeLoadHardening, RejectsBackwardChild) {
  std::istringstream is(
      "tree 2 3 3\n"
      "-1 0 -1 -1 1 2 0 1\n"
      "1 0.5 0 2 0 0\n"  // left child points backwards: a cycle
      "-1 0 -1 -1 0 2 1 0\n");
  EXPECT_THROW(DecisionTree::load(is), ParseError);
}

TEST(TreeLoadHardening, RejectsOutOfRangeChild) {
  std::istringstream is(
      "tree 2 3 1\n"
      "0 0.5 5 6 0 0\n");
  EXPECT_THROW(DecisionTree::load(is), ParseError);
}

TEST(TreeLoadHardening, RejectsOutOfRangeSplitFeature) {
  std::istringstream is(
      "tree 2 3 3\n"
      "7 0.5 1 2 0 0\n"  // feature 7 of 3
      "-1 0 -1 -1 1 2 0 1\n"
      "-1 0 -1 -1 0 2 1 0\n");
  EXPECT_THROW(DecisionTree::load(is), ParseError);
}

TEST(ForestLoadHardening, RejectsTreeDisagreeingWithForestHeader) {
  // fuzz/regressions/model/crash-forest-dim-mismatch.txt: the forest says
  // 2 classes but its tree says 4 — pre-fix, predict_proba wrote the
  // tree's 4 probabilities into the forest's 2-slot buffer.
  std::istringstream is(
      "droppkt-rf v1\n"
      "2 3 1\n"
      "rate_mbps\ngap_s\nchunks\n"
      "tree 4 3 1\n"
      "-1 0 -1 -1 0 4 0.25 0.25 0.25 0.25\n");
  EXPECT_THROW(RandomForest::load(is), ParseError);
}

TEST(ForestLoadHardening, RejectsTreeWithWrongFeatureCount) {
  std::istringstream is(
      "droppkt-rf v1\n"
      "2 3 1\n"
      "rate_mbps\ngap_s\nchunks\n"
      "tree 2 8 1\n"
      "-1 0 -1 -1 0 2 1 0\n");
  EXPECT_THROW(RandomForest::load(is), ParseError);
}

TEST(ForestLoadHardening, RejectsHugeTreeCount) {
  std::istringstream is(
      "droppkt-rf v1\n"
      "2 3 4000000000\n"
      "rate_mbps\ngap_s\nchunks\n");
  EXPECT_THROW(RandomForest::load(is), ParseError);
}

TEST(GbtSerialization, RoundTripPredictsIdentically) {
  const Dataset data = tiny_dataset();
  GradientBoostingParams params;
  params.num_rounds = 6;
  params.max_depth = 2;
  params.min_samples_leaf = 1;
  params.subsample = 1.0;
  GradientBoosting model(params);
  model.fit(data);

  std::stringstream ss;
  model.save(ss);
  const GradientBoosting back = GradientBoosting::load(ss);
  EXPECT_EQ(back.num_classes(), model.num_classes());
  EXPECT_EQ(back.num_features(), model.num_features());
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(back.predict(data.row(i)), model.predict(data.row(i)));
    const auto pa = model.predict_proba(data.row(i));
    const auto pb = back.predict_proba(data.row(i));
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t c = 0; c < pa.size(); ++c) {
      EXPECT_NEAR(pa[c], pb[c], 1e-12);
    }
  }
}

TEST(GbtSerialization, UnfittedSaveThrows) {
  const GradientBoosting model;
  std::ostringstream os;
  EXPECT_THROW(model.save(os), ContractViolation);
}

TEST(GbtLoadHardening, RejectsBadHeader) {
  std::istringstream is("droppkt-gbt v9\n2 2 0.1\n");
  EXPECT_THROW(GradientBoosting::load(is), ParseError);
}

TEST(GbtLoadHardening, RejectsHostileDimensions) {
  {
    std::istringstream is("droppkt-gbt v1\n999999 2 0.1\n");
    EXPECT_THROW(GradientBoosting::load(is), ParseError);
  }
  {
    std::istringstream is("droppkt-gbt v1\n2 999999999 0.1\n");
    EXPECT_THROW(GradientBoosting::load(is), ParseError);
  }
  {
    std::istringstream is("droppkt-gbt v1\n2 2 nan\n");
    EXPECT_THROW(GradientBoosting::load(is), ParseError);
  }
}

TEST(GbtLoadHardening, RejectsTruncatedEnsemble) {
  const Dataset data = tiny_dataset();
  GradientBoostingParams params;
  params.num_rounds = 4;
  params.subsample = 1.0;
  GradientBoosting model(params);
  model.fit(data);
  std::ostringstream os;
  model.save(os);
  const std::string full = os.str();
  // Chop the serialized model at a few points; every prefix must be a
  // typed reject, never a crash or a silently-partial model.
  for (const double frac : {0.25, 0.5, 0.9}) {
    std::istringstream is(
        full.substr(0, static_cast<std::size_t>(frac * full.size())));
    EXPECT_THROW(GradientBoosting::load(is), ParseError);
  }
}

TEST(GbtPredict, RejectsWrongFeatureCount) {
  const Dataset data = tiny_dataset();
  GradientBoosting model;
  model.fit(data);
  const std::vector<double> wrong(5, 0.0);
  EXPECT_THROW(model.predict_proba(wrong), ContractViolation);
}

}  // namespace
}  // namespace droppkt::ml
