#include "ml/metrics.hpp"

#include <gtest/gtest.h>

#include "util/expect.hpp"

namespace droppkt::ml {
namespace {

ConfusionMatrix make_cm() {
  ConfusionMatrix cm(3);
  // actual 0: 8 correct, 2 as class 1.
  for (int i = 0; i < 8; ++i) cm.add(0, 0);
  for (int i = 0; i < 2; ++i) cm.add(0, 1);
  // actual 1: 5 correct, 5 as class 2.
  for (int i = 0; i < 5; ++i) cm.add(1, 1);
  for (int i = 0; i < 5; ++i) cm.add(1, 2);
  // actual 2: 10 correct.
  for (int i = 0; i < 10; ++i) cm.add(2, 2);
  return cm;
}

TEST(ConfusionMatrix, CountsAndTotals) {
  const auto cm = make_cm();
  EXPECT_EQ(cm.count(0, 0), 8u);
  EXPECT_EQ(cm.count(1, 2), 5u);
  EXPECT_EQ(cm.total(), 30u);
  EXPECT_EQ(cm.actual_total(0), 10u);
  EXPECT_EQ(cm.predicted_total(2), 15u);
}

TEST(ConfusionMatrix, Accuracy) {
  const auto cm = make_cm();
  EXPECT_NEAR(cm.accuracy(), 23.0 / 30.0, 1e-12);
}

TEST(ConfusionMatrix, PrecisionRecall) {
  const auto cm = make_cm();
  EXPECT_NEAR(cm.recall(0), 0.8, 1e-12);
  EXPECT_NEAR(cm.precision(0), 1.0, 1e-12);   // nothing else predicted 0
  EXPECT_NEAR(cm.recall(1), 0.5, 1e-12);
  EXPECT_NEAR(cm.precision(1), 5.0 / 7.0, 1e-12);
  EXPECT_NEAR(cm.precision(2), 10.0 / 15.0, 1e-12);
}

TEST(ConfusionMatrix, F1) {
  const auto cm = make_cm();
  const double p = cm.precision(1), r = cm.recall(1);
  EXPECT_NEAR(cm.f1(1), 2 * p * r / (p + r), 1e-12);
}

TEST(ConfusionMatrix, MacroAverages) {
  const auto cm = make_cm();
  EXPECT_NEAR(cm.macro_recall(), (0.8 + 0.5 + 1.0) / 3.0, 1e-12);
  EXPECT_NEAR(cm.macro_precision(), (1.0 + 5.0 / 7.0 + 10.0 / 15.0) / 3.0,
              1e-12);
}

TEST(ConfusionMatrix, EmptyMatrixSafeDefaults) {
  ConfusionMatrix cm(2);
  EXPECT_EQ(cm.accuracy(), 0.0);
  EXPECT_EQ(cm.precision(0), 0.0);
  EXPECT_EQ(cm.recall(1), 0.0);
  EXPECT_EQ(cm.f1(0), 0.0);
}

TEST(ConfusionMatrix, MergeAddsCells) {
  auto a = make_cm();
  const auto b = make_cm();
  a.merge(b);
  EXPECT_EQ(a.total(), 60u);
  EXPECT_EQ(a.count(1, 2), 10u);
  EXPECT_NEAR(a.accuracy(), 23.0 / 30.0, 1e-12);  // unchanged ratio
}

TEST(ConfusionMatrix, MergeRejectsMismatch) {
  ConfusionMatrix a(2), b(3);
  EXPECT_THROW(a.merge(b), droppkt::ContractViolation);
}

TEST(ConfusionMatrix, ValidatesIndices) {
  ConfusionMatrix cm(2);
  EXPECT_THROW(cm.add(2, 0), droppkt::ContractViolation);
  EXPECT_THROW(cm.add(0, -1), droppkt::ContractViolation);
  EXPECT_THROW(cm.count(0, 5), droppkt::ContractViolation);
  EXPECT_THROW(ConfusionMatrix(0), droppkt::ContractViolation);
}

TEST(ConfusionMatrix, RenderShowsRowPercentages) {
  const auto cm = make_cm();
  const auto out = cm.render({"low", "med", "high"});
  EXPECT_NE(out.find("low"), std::string::npos);
  EXPECT_NE(out.find("80%"), std::string::npos);   // recall of low
  EXPECT_NE(out.find("100%"), std::string::npos);  // high row
}

TEST(ConfusionMatrix, RenderValidatesNameCount) {
  const auto cm = make_cm();
  EXPECT_THROW(cm.render({"a"}), droppkt::ContractViolation);
}

}  // namespace
}  // namespace droppkt::ml
