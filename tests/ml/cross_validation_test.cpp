#include "ml/cross_validation.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "ml/random_forest.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace droppkt::ml {
namespace {

Dataset blobs(std::size_t n, std::uint64_t seed, double spread) {
  Dataset d({"x", "y"}, 2);
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(rng.uniform_int(0, 1));
    d.add_row({label * 2.0 + rng.normal(0.0, spread),
               -label * 2.0 + rng.normal(0.0, spread)},
              label);
  }
  return d;
}

std::function<std::unique_ptr<Classifier>()> small_forest() {
  return [] {
    RandomForestParams p;
    p.num_trees = 15;
    p.seed = 3;
    return std::make_unique<RandomForest>(p);
  };
}

TEST(CrossValidate, PooledTotalsEqualDatasetSize) {
  const auto d = blobs(100, 1, 0.5);
  const auto cv = cross_validate(d, small_forest(), 5, 7);
  EXPECT_EQ(cv.pooled.total(), 100u);
  EXPECT_EQ(cv.fold_accuracy.size(), 5u);
}

TEST(CrossValidate, EasyProblemHighAccuracy) {
  const auto d = blobs(300, 2, 0.3);
  const auto cv = cross_validate(d, small_forest(), 5, 7);
  EXPECT_GT(cv.accuracy(), 0.95);
  EXPECT_GT(cv.recall(0), 0.9);
  EXPECT_GT(cv.precision(1), 0.9);
}

TEST(CrossValidate, HardProblemNearChance) {
  const auto d = blobs(300, 3, 50.0);  // classes drowned in noise
  const auto cv = cross_validate(d, small_forest(), 5, 7);
  EXPECT_LT(cv.accuracy(), 0.68);
  EXPECT_GT(cv.accuracy(), 0.32);
}

TEST(CrossValidate, DeterministicGivenSeed) {
  const auto d = blobs(120, 4, 0.8);
  const auto a = cross_validate(d, small_forest(), 5, 11);
  const auto b = cross_validate(d, small_forest(), 5, 11);
  EXPECT_EQ(a.accuracy(), b.accuracy());
  EXPECT_EQ(a.fold_accuracy, b.fold_accuracy);
}

TEST(CrossValidate, SeedChangesFolds) {
  const auto d = blobs(120, 5, 1.2);
  const auto a = cross_validate(d, small_forest(), 5, 1);
  const auto b = cross_validate(d, small_forest(), 5, 2);
  // Accuracy on a noisy problem almost surely differs across fold splits.
  EXPECT_NE(a.fold_accuracy, b.fold_accuracy);
}

TEST(CrossValidate, FoldAccuracyConsistentWithPooled) {
  const auto d = blobs(200, 6, 0.5);
  const auto cv = cross_validate(d, small_forest(), 4, 7);
  double mean_fold = 0.0;
  for (double a : cv.fold_accuracy) mean_fold += a;
  mean_fold /= cv.fold_accuracy.size();
  EXPECT_NEAR(mean_fold, cv.accuracy(), 0.02);
}

TEST(CrossValidate, RejectsNullFactory) {
  const auto d = blobs(50, 7, 0.5);
  EXPECT_THROW(
      cross_validate(d, std::function<std::unique_ptr<Classifier>()>{}, 5, 1),
      droppkt::ContractViolation);
}

TEST(CrossValidationResult, ScoresDelegateToPooled) {
  CrossValidationResult r(2);
  r.pooled.add(0, 0);
  r.pooled.add(0, 1);
  r.pooled.add(1, 1);
  EXPECT_NEAR(r.accuracy(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.recall(0), 0.5, 1e-12);
  EXPECT_NEAR(r.precision(0), 1.0, 1e-12);
}

}  // namespace
}  // namespace droppkt::ml
