// Histogram-based split finding (SplitMethod::kHistogram): quantized
// binning invariants, thread-count determinism of training, accuracy
// parity with the exact presorted search, and fit_on_pool equivalence.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "ml/dataset.hpp"
#include "ml/random_forest.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace droppkt::ml {
namespace {

Dataset make_problem(std::size_t n, std::uint64_t seed,
                     std::size_t noise_features = 3) {
  std::vector<std::string> names{"x0", "x1"};
  for (std::size_t f = 0; f < noise_features; ++f) {
    std::string name = "noise";
    name += std::to_string(f);
    names.push_back(std::move(name));
  }
  Dataset d(std::move(names), 3);
  util::Rng rng(seed);
  std::vector<double> row(2 + noise_features);
  for (std::size_t i = 0; i < n; ++i) {
    const int label = static_cast<int>(rng.uniform_int(0, 2));
    row[0] = label + rng.normal(0.0, 0.4);
    row[1] = -label + rng.normal(0.0, 0.4);
    for (std::size_t f = 0; f < noise_features; ++f) {
      row[2 + f] = rng.normal();
    }
    d.add_row(std::span<const double>(row), label);
  }
  return d;
}

std::string fit_and_save(const Dataset& d, const RandomForestParams& p) {
  RandomForest rf(p);
  rf.fit(d);
  std::stringstream ss;
  rf.save(ss);
  return ss.str();
}

double holdout_accuracy(const RandomForest& rf, const Dataset& test) {
  std::size_t hits = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    hits += static_cast<std::size_t>(rf.predict(test.row(i)) == test.label(i));
  }
  return static_cast<double>(hits) / static_cast<double>(test.size());
}

TEST(ColumnBins, RespectsBinCapAndMonotoneThresholds) {
  const auto d = make_problem(1000, 11);
  ColumnMatrix columns(d);
  EXPECT_FALSE(columns.bins_built());
  columns.build_bins(64);
  ASSERT_TRUE(columns.bins_built());
  for (std::size_t f = 0; f < columns.num_features(); ++f) {
    const std::size_t nb = columns.num_bins(f);
    ASSERT_GE(nb, 1u);
    ASSERT_LE(nb, 64u);
    for (std::size_t b = 0; b + 1 < nb; ++b) {
      EXPECT_LT(columns.bin_threshold(f, b), columns.bin_threshold(f, b + 1));
    }
    EXPECT_TRUE(std::isinf(columns.bin_threshold(f, nb - 1)));
  }
}

TEST(ColumnBins, BinRealizesThresholdOrderExactly) {
  // The defining property of the mapping: for every row and every bin
  // boundary, value <= threshold iff bin <= b. Split decisions made on
  // bins during training therefore agree with the raw-value thresholds
  // the tree stores for prediction.
  const auto d = make_problem(600, 12);
  ColumnMatrix columns(d);
  columns.build_bins(32);
  for (std::size_t f = 0; f < columns.num_features(); ++f) {
    const auto bins = columns.bin_column(f);
    const auto vals = columns.column(f);
    const std::size_t nb = columns.num_bins(f);
    for (std::size_t b = 0; b + 1 < nb; ++b) {
      const double thr = columns.bin_threshold(f, b);
      for (std::size_t r = 0; r < d.size(); ++r) {
        EXPECT_EQ(vals[r] <= thr, bins[r] <= b)
            << "feature " << f << " row " << r << " boundary " << b;
      }
    }
  }
}

TEST(ColumnBins, FewDistinctValuesGetOneBinEach) {
  Dataset d({"f0"}, 2);
  for (int i = 0; i < 100; ++i) {
    d.add_row({static_cast<double>(i % 4)}, i % 2);
  }
  ColumnMatrix columns(d);
  columns.build_bins(256);
  EXPECT_EQ(columns.num_bins(0), 4u);
}

TEST(HistogramSplit, BitIdenticalForAnyThreadCount) {
  const auto d = make_problem(400, 5);
  RandomForestParams p;
  p.num_trees = 24;
  p.seed = 1303;
  p.split_method = SplitMethod::kHistogram;
  p.num_threads = 1;
  const std::string m1 = fit_and_save(d, p);
  p.num_threads = 2;
  const std::string m2 = fit_and_save(d, p);
  p.num_threads = 8;
  const std::string m8 = fit_and_save(d, p);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(m1, m8);
}

TEST(HistogramSplit, FitOnPoolMatchesFit) {
  const auto d = make_problem(300, 9);
  RandomForestParams p;
  p.num_trees = 12;
  p.seed = 77;
  p.split_method = SplitMethod::kHistogram;
  p.num_threads = 3;
  const std::string via_fit = fit_and_save(d, p);

  RandomForest rf(p);
  util::ThreadPool pool(3);
  rf.fit_on_pool(d, pool);
  std::stringstream ss;
  rf.save(ss);
  EXPECT_EQ(via_fit, ss.str());
}

TEST(HistogramSplit, AccuracyWithinDeltaOfExact) {
  // Fixed-seed accuracy gate mirrored by bench_ml_training: binned split
  // quality may differ from the exact search only marginally.
  const auto train = make_problem(1500, 21);
  const auto test = make_problem(600, 22);
  RandomForestParams p;
  p.num_trees = 40;
  p.seed = 4242;
  p.num_threads = 1;
  RandomForest exact(p);
  exact.fit(train);
  p.split_method = SplitMethod::kHistogram;
  RandomForest hist(p);
  hist.fit(train);
  const double acc_exact = holdout_accuracy(exact, test);
  const double acc_hist = holdout_accuracy(hist, test);
  EXPECT_NEAR(acc_hist, acc_exact, 0.02)
      << "histogram split accuracy drifted from exact search";
}

TEST(HistogramSplit, FewerBinsStillLearns) {
  const auto train = make_problem(800, 31);
  const auto test = make_problem(400, 32);
  RandomForestParams p;
  p.num_trees = 24;
  p.seed = 9;
  p.split_method = SplitMethod::kHistogram;
  p.max_bins = 16;
  p.num_threads = 1;
  RandomForest rf(p);
  rf.fit(train);
  EXPECT_GT(holdout_accuracy(rf, test), 0.85);
}

TEST(HistogramSplit, OobAndImportancesPopulated) {
  const auto d = make_problem(300, 41);
  RandomForestParams p;
  p.num_trees = 16;
  p.seed = 3;
  p.split_method = SplitMethod::kHistogram;
  p.num_threads = 1;
  RandomForest rf(p);
  rf.fit(d);
  ASSERT_TRUE(rf.oob_error().has_value());
  EXPECT_LT(*rf.oob_error(), 0.5);
  const auto imp = rf.feature_importances();
  ASSERT_EQ(imp.size(), d.num_features());
  // The informative features must dominate the noise columns.
  EXPECT_GT(imp[0] + imp[1], 0.5);
}

TEST(HistogramSplit, CollectTimingPopulatesBreakdown) {
  const auto d = make_problem(250, 51);
  RandomForestParams p;
  p.num_trees = 8;
  p.seed = 13;
  p.split_method = SplitMethod::kHistogram;
  p.collect_timing = true;
  p.num_threads = 1;
  RandomForest rf(p);
  EXPECT_EQ(rf.last_fit_timing(), nullptr);
  rf.fit(d);
  const auto* timing = rf.last_fit_timing();
  ASSERT_NE(timing, nullptr);
  EXPECT_GE(timing->bootstrap_draw_s, 0.0);
  EXPECT_GE(timing->column_build_s, 0.0);
  EXPECT_GT(timing->trees_wall_s, 0.0);
  ASSERT_EQ(timing->tree_seconds.size(), p.num_trees);
  for (const double s : timing->tree_seconds) EXPECT_GE(s, 0.0);
}

TEST(HistogramSplit, TimingCollectionDoesNotChangeModel) {
  const auto d = make_problem(250, 52);
  RandomForestParams p;
  p.num_trees = 8;
  p.seed = 17;
  p.split_method = SplitMethod::kHistogram;
  p.num_threads = 2;
  const std::string plain = fit_and_save(d, p);
  p.collect_timing = true;
  EXPECT_EQ(plain, fit_and_save(d, p));
}

}  // namespace
}  // namespace droppkt::ml
