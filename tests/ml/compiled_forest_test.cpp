// CompiledForest: equivalence with the tree-walk forest (byte-identical
// probabilities), degenerate shapes, serialization round-trip, and
// hostile-input hardening of load().
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "ml/compiled_forest.hpp"
#include "ml/dataset.hpp"
#include "ml/random_forest.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace droppkt::ml {
namespace {

Dataset make_problem(std::size_t n, std::uint64_t seed,
                     std::size_t num_features = 6, int num_classes = 3) {
  std::vector<std::string> names;
  for (std::size_t f = 0; f < num_features; ++f) {
    std::string name = "f";
    name += std::to_string(f);
    names.push_back(std::move(name));
  }
  Dataset d(std::move(names), num_classes);
  util::Rng rng(seed);
  std::vector<double> row(num_features);
  for (std::size_t i = 0; i < n; ++i) {
    const int label =
        static_cast<int>(rng.uniform_int(0, num_classes - 1));
    for (std::size_t f = 0; f < num_features; ++f) {
      row[f] = rng.normal(f < 2 ? label : 0.0, 1.0);
    }
    d.add_row(std::span<const double>(row), label);
  }
  return d;
}

void expect_equivalent(const RandomForest& rf, const CompiledForest& cf,
                       const Dataset& data) {
  ASSERT_EQ(cf.num_trees(), rf.num_trees());
  ASSERT_EQ(cf.num_classes(), rf.num_classes());
  ASSERT_EQ(cf.num_features(), rf.num_features());
  const auto c_count = static_cast<std::size_t>(rf.num_classes());

  // Row-at-a-time equivalence must be exact (same doubles, not close).
  std::vector<double> want(c_count), got(c_count);
  for (std::size_t r = 0; r < data.size(); ++r) {
    rf.predict_proba_into(data.row(r), want);
    cf.predict_proba_into(data.row(r), got);
    for (std::size_t c = 0; c < c_count; ++c) {
      ASSERT_EQ(want[c], got[c]) << "row " << r << " class " << c;
    }
  }

  // Batch path, including the tile remainder and the threaded split.
  std::vector<double> want_b(data.size() * c_count);
  std::vector<double> got_b(data.size() * c_count);
  rf.predict_proba_batch(data, want_b, 1);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    cf.predict_proba_batch(data, got_b, threads);
    for (std::size_t i = 0; i < want_b.size(); ++i) {
      ASSERT_EQ(want_b[i], got_b[i]) << "flat index " << i << " threads "
                                     << threads;
    }
  }
}

TEST(CompiledForest, MatchesTreeWalkOnRandomizedForests) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto train = make_problem(300, seed);
    const auto probe = make_problem(517, seed + 100);  // not a tile multiple
    RandomForestParams p;
    p.num_trees = 20;
    p.seed = seed;
    p.num_threads = 1;
    RandomForest rf(p);
    rf.fit(train);
    const auto cf = CompiledForest::compile(rf);
    EXPECT_GT(cf.num_nodes(), rf.num_trees());
    expect_equivalent(rf, cf, probe);
  }
}

TEST(CompiledForest, MatchesTreeWalkOnHistogramTrainedForest) {
  const auto train = make_problem(400, 7);
  const auto probe = make_problem(200, 8);
  RandomForestParams p;
  p.num_trees = 16;
  p.seed = 7;
  p.split_method = SplitMethod::kHistogram;
  p.num_threads = 1;
  RandomForest rf(p);
  rf.fit(train);
  expect_equivalent(rf, CompiledForest::compile(rf), probe);
}

TEST(CompiledForest, SingleNodeTrees) {
  // All rows share one label: every tree is a root-only leaf, descent
  // depth zero.
  Dataset d({"f0", "f1"}, 2);
  for (int i = 0; i < 50; ++i) {
    d.add_row({static_cast<double>(i), static_cast<double>(-i)}, 1);
  }
  RandomForestParams p;
  p.num_trees = 5;
  p.seed = 3;
  p.num_threads = 1;
  RandomForest rf(p);
  rf.fit(d);
  const auto cf = CompiledForest::compile(rf);
  EXPECT_EQ(cf.num_nodes(), rf.num_trees());  // one node per tree
  expect_equivalent(rf, cf, d);
}

TEST(CompiledForest, MaxDepthChainTrees) {
  // min_samples_leaf 1 + tiny depth-hungry data: trees degenerate toward
  // one-sided chains at the depth cap.
  Dataset d({"f0"}, 2);
  for (int i = 0; i < 64; ++i) {
    d.add_row({static_cast<double>(i)}, i % 2);
  }
  RandomForestParams p;
  p.num_trees = 8;
  p.max_depth = 40;
  p.seed = 11;
  p.num_threads = 1;
  RandomForest rf(p);
  rf.fit(d);
  expect_equivalent(rf, CompiledForest::compile(rf), d);
}

TEST(CompiledForest, SaveLoadRoundTrip) {
  const auto train = make_problem(250, 19);
  const auto probe = make_problem(120, 20);
  RandomForestParams p;
  p.num_trees = 12;
  p.seed = 19;
  p.num_threads = 1;
  RandomForest rf(p);
  rf.fit(train);
  const auto cf = CompiledForest::compile(rf);

  std::stringstream ss;
  cf.save(ss);
  const std::string first = ss.str();
  const auto loaded = CompiledForest::load(ss);
  expect_equivalent(rf, loaded, probe);

  // Serialization is a fixed point: saving the loaded forest reproduces
  // the file byte for byte.
  std::stringstream again;
  loaded.save(again);
  EXPECT_EQ(first, again.str());
}

TEST(CompiledForest, PredictBeforeCompileFails) {
  CompiledForest cf;
  EXPECT_FALSE(cf.compiled());
  std::vector<double> x(3, 0.0), out(3, 0.0);
  EXPECT_THROW(cf.predict_proba_into(x, out), ContractViolation);
}

TEST(CompiledForestLoad, RejectsMalformedInput) {
  const auto reject = [](const std::string& text) {
    std::istringstream is(text);
    EXPECT_THROW(CompiledForest::load(is), ParseError) << text;
  };
  reject("");
  reject("droppkt-rf v1\n");
  // Header only, truncated dimensions.
  reject("droppkt-cf v1\n");
  // Zero trees.
  reject("droppkt-cf v1\n2 1 0 1 2\n");
  // Root out of range.
  reject("droppkt-cf v1\n2 1 1 1 2\n5\n-1 0 0\n0.5 0.5\n");
  // Internal node pointing backwards (would loop).
  reject("droppkt-cf v1\n2 1 1 3 2\n0\n0 1.5 0\n-1 0 0\n-1 0 0\n0.5 0.5\n");
  // Leaf offset not a multiple of num_classes.
  reject("droppkt-cf v1\n2 1 1 1 2\n0\n-1 0 1\n0.5 0.5\n");
  // Leaf offset past the prob pool.
  reject("droppkt-cf v1\n2 1 1 1 2\n0\n-1 0 2\n0.5 0.5\n");
  // Feature index out of range.
  reject(
      "droppkt-cf v1\n2 1 1 3 2\n0\n7 1.5 1\n-1 0 0\n-1 0 0\n0.5 0.5\n");
  // Non-finite threshold.
  reject(
      "droppkt-cf v1\n2 1 1 3 2\n0\nnan 1.5 1\n-1 0 0\n-1 0 0\n0.5 0.5\n");
  // Two parents claiming the same children.
  reject(
      "droppkt-cf v1\n2 1 1 5 2\n0\n0 1.0 1\n0 2.0 3\n0 3.0 3\n-1 0 0\n"
      "-1 0 0\n0.5 0.5\n");
  // Negative leaf probability.
  reject("droppkt-cf v1\n2 1 1 1 2\n0\n-1 0 0\n-0.5 0.5\n");
  // Truncated probability pool.
  reject("droppkt-cf v1\n2 1 1 1 2\n0\n-1 0 0\n0.5\n");
}

TEST(CompiledForestLoad, AcceptsMinimalValidFile) {
  // One tree: root splits on f0 at 1.5, two leaves.
  std::istringstream is(
      "droppkt-cf v1\n2 1 1 3 4\n0\n0 1.5 1\n-1 0 0\n-1 0 2\n"
      "1 0\n0 1\n");
  const auto cf = CompiledForest::load(is);
  EXPECT_EQ(cf.num_trees(), 1u);
  EXPECT_EQ(cf.num_nodes(), 3u);
  const std::vector<double> low{1.0}, high{2.0};
  std::vector<double> out(2);
  cf.predict_proba_into(low, out);
  EXPECT_EQ(out[0], 1.0);
  EXPECT_EQ(out[1], 0.0);
  cf.predict_proba_into(high, out);
  EXPECT_EQ(out[0], 0.0);
  EXPECT_EQ(out[1], 1.0);
}

}  // namespace
}  // namespace droppkt::ml
