#include "core/estimator.hpp"

#include <gtest/gtest.h>

#include "util/expect.hpp"

namespace droppkt::core {
namespace {

LabeledDataset small_dataset(std::size_t n = 150, std::uint64_t seed = 1) {
  DatasetConfig cfg;
  cfg.num_sessions = n;
  cfg.seed = seed;
  cfg.trace_pool_size = 40;
  cfg.catalog_size = 20;
  return build_dataset(has::svc1_profile(), cfg);
}

TEST(QoeEstimator, UntrainedPredictThrows) {
  QoeEstimator est;
  EXPECT_FALSE(est.trained());
  EXPECT_THROW(est.predict({}), droppkt::ContractViolation);
  EXPECT_THROW(est.feature_importances(), droppkt::ContractViolation);
}

TEST(QoeEstimator, EmptyTrainingThrows) {
  QoeEstimator est;
  EXPECT_THROW(est.train({}), droppkt::ContractViolation);
  EXPECT_THROW(est.train_raw({}), droppkt::ContractViolation);
}

TEST(QoeEstimator, TrainsAndGeneralizes) {
  const auto train = small_dataset(200, 1);
  const auto test = small_dataset(80, 2);
  QoeEstimator est;
  est.train(train);
  EXPECT_TRUE(est.trained());
  std::size_t correct = 0;
  for (const auto& s : test) {
    correct += est.predict(s.record.tls) == s.labels.combined;
  }
  // Well above the ~40% majority-class rate.
  EXPECT_GT(static_cast<double>(correct) / test.size(), 0.6);
}

TEST(QoeEstimator, TargetsSelectable) {
  const auto train = small_dataset(120, 3);
  EstimatorConfig cfg;
  cfg.target = QoeTarget::kRebuffering;
  QoeEstimator est(cfg);
  est.train(train);
  std::size_t correct = 0;
  for (const auto& s : train) {
    correct += est.predict(s.record.tls) == s.labels.rebuffering;
  }
  EXPECT_GT(static_cast<double>(correct) / train.size(), 0.8);
}

TEST(QoeEstimator, ClassNamesFollowTarget) {
  EstimatorConfig cfg;
  cfg.target = QoeTarget::kRebuffering;
  const QoeEstimator est(cfg);
  EXPECT_EQ(est.class_name(0), "high");
  EXPECT_EQ(est.class_name(2), "zero");
  const QoeEstimator combined;
  EXPECT_EQ(combined.class_name(0), "low");
  EXPECT_THROW(combined.class_name(3), droppkt::ContractViolation);
}

TEST(QoeEstimator, ProbaIsDistribution) {
  const auto train = small_dataset(120, 4);
  QoeEstimator est;
  est.train(train);
  const auto proba = est.predict_proba(train.front().record.tls);
  ASSERT_EQ(proba.size(), 3u);
  double sum = 0.0;
  for (double p : proba) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(QoeEstimator, ImportancesCoverAllFeaturesSorted) {
  const auto train = small_dataset(120, 5);
  QoeEstimator est;
  est.train(train);
  const auto imp = est.feature_importances();
  EXPECT_EQ(imp.size(), 38u);
  for (std::size_t i = 1; i < imp.size(); ++i) {
    EXPECT_GE(imp[i - 1].second, imp[i].second);
  }
}

TEST(QoeEstimator, TrainRawWithCustomLabels) {
  const auto ds = small_dataset(100, 6);
  std::vector<std::pair<trace::TlsLog, int>> labelled;
  for (const auto& s : ds) {
    labelled.emplace_back(s.record.tls, s.labels.combined);
  }
  QoeEstimator est;
  est.train_raw(labelled);
  EXPECT_TRUE(est.trained());
}

TEST(QoeEstimator, CustomIntervalsWork) {
  EstimatorConfig cfg;
  cfg.features.interval_ends_s = {15.0, 45.0, 90.0};
  QoeEstimator est(cfg);
  est.train(small_dataset(100, 7));
  EXPECT_EQ(est.feature_importances().size(), 4u + 18u + 6u);
}

TEST(QoeEstimator, BatchPredictMatchesPerSession) {
  const auto train = small_dataset(120, 10);
  const auto test = small_dataset(40, 11);
  QoeEstimator est;
  est.train(train);

  std::vector<trace::TlsLog> logs;
  for (const auto& s : test) logs.push_back(s.record.tls);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const auto preds = est.predict_batch(logs, threads);
    ASSERT_EQ(preds.size(), logs.size());
    std::vector<double> proba(logs.size() * 3);
    est.predict_proba_batch(logs, proba, threads);
    for (std::size_t i = 0; i < logs.size(); ++i) {
      EXPECT_EQ(preds[i], est.predict(logs[i]));
      const auto one = est.predict_proba(logs[i]);
      for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_EQ(proba[i * 3 + c], one[c]);
      }
    }
  }
}

TEST(QoeEstimator, BatchPredictRejectsWrongBufferOrUntrained) {
  const QoeEstimator untrained;
  const std::vector<trace::TlsLog> logs(2);
  EXPECT_THROW(untrained.predict_batch(logs, 1), droppkt::ContractViolation);

  QoeEstimator est;
  est.train(small_dataset(80, 12));
  std::vector<double> too_small(logs.size() * 3 - 1);
  EXPECT_THROW(est.predict_proba_batch(logs, too_small, 1),
               droppkt::ContractViolation);
}

TEST(QoeEstimator, SpanApisMatchAllocatingApis) {
  QoeEstimator est;
  est.train(small_dataset(120, 21));
  const auto test = small_dataset(30, 22);

  ASSERT_EQ(est.feature_count(), tls_feature_count(est.config().features));
  std::vector<double> features(est.feature_count());
  std::vector<double> proba(static_cast<std::size_t>(kNumQoeClasses));
  auto acc = est.make_accumulator();
  ASSERT_EQ(acc.feature_count(), est.feature_count());

  for (const auto& s : test) {
    const auto& log = s.record.tls;
    // Feature-vector span path.
    const auto extracted = extract_tls_features(log, est.config().features);
    est.predict_proba_into(extracted, proba);
    const auto expected_proba = est.predict_proba(log);
    for (std::size_t c = 0; c < proba.size(); ++c) {
      EXPECT_EQ(proba[c], expected_proba[c]);
    }
    EXPECT_EQ(est.predict_into(extracted, proba), est.predict(log));

    // Accumulator path — the streaming monitor's classification route.
    acc.reset();
    for (const auto& t : log) acc.observe(t);
    EXPECT_EQ(est.predict_into(acc, features, proba), est.predict(log));
  }
}

TEST(QoeEstimator, SpanApisValidateSizesAndTraining) {
  const QoeEstimator untrained;
  std::vector<double> features(untrained.feature_count());
  std::vector<double> proba(static_cast<std::size_t>(kNumQoeClasses));
  EXPECT_THROW(untrained.predict_proba_into(features, proba),
               droppkt::ContractViolation);

  QoeEstimator est;
  est.train(small_dataset(60, 23));
  std::vector<double> bad_proba(static_cast<std::size_t>(kNumQoeClasses) - 1);
  EXPECT_THROW(est.predict_proba_into(features, bad_proba),
               droppkt::ContractViolation);
}

TEST(QoeEstimator, DeterministicGivenSeeds) {
  const auto train = small_dataset(100, 8);
  const auto test = small_dataset(30, 9);
  QoeEstimator a, b;
  a.train(train);
  b.train(train);
  for (const auto& s : test) {
    EXPECT_EQ(a.predict(s.record.tls), b.predict(s.record.tls));
  }
}

}  // namespace
}  // namespace droppkt::core
