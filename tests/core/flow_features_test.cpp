#include "core/flow_features.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/expect.hpp"

namespace droppkt::core {
namespace {

LabeledDataset small_dataset(std::size_t n = 40, std::uint64_t seed = 1) {
  DatasetConfig cfg;
  cfg.num_sessions = n;
  cfg.seed = seed;
  cfg.trace_pool_size = 30;
  cfg.catalog_size = 15;
  return build_dataset(has::svc1_profile(), cfg);
}

TEST(FlowFeatures, NamesMirrorTlsFeatures) {
  const auto names = flow_feature_names();
  ASSERT_EQ(names.size(), 38u);
  EXPECT_EQ(names[0], "FLOW_SDR_DL");
  for (const auto& n : names) EXPECT_EQ(n.rfind("FLOW_", 0), 0u);
}

TEST(FlowFeatures, EmptyLogAllZero) {
  const auto f = extract_flow_features({});
  EXPECT_EQ(f.size(), 38u);
  for (double v : f) EXPECT_EQ(v, 0.0);
}

TEST(FlowFeatures, MatchesEquivalentTlsExtraction) {
  trace::FlowLog flows;
  trace::FlowRecord r;
  r.first_s = 0.0;
  r.last_s = 10.0;
  r.ul_bytes = 500.0;
  r.dl_bytes = 1e6;
  r.server_ip = "203.0.1.1";
  flows.push_back(r);

  trace::TlsLog tls{{.start_s = 0.0, .end_s = 10.0, .ul_bytes = 500.0,
                     .dl_bytes = 1e6, .sni = "whatever", .http_count = 0}};
  const auto ff = extract_flow_features(flows);
  const auto tf = extract_tls_features(tls);
  ASSERT_EQ(ff.size(), tf.size());
  for (std::size_t i = 0; i < ff.size(); ++i) EXPECT_EQ(ff[i], tf[i]);
}

TEST(FlowsForSession, DeterministicAndNonEmpty) {
  const auto ds = small_dataset(5);
  for (const auto& s : ds) {
    const auto a = flows_for_session(s.record);
    const auto b = flows_for_session(s.record);
    ASSERT_FALSE(a.empty());
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].dl_bytes, b[i].dl_bytes);
      EXPECT_EQ(a[i].first_s, b[i].first_s);
    }
  }
}

TEST(FlowsForSession, FinerTimeoutMoreRecords) {
  const auto ds = small_dataset(8, 2);
  std::size_t coarse_n = 0, fine_n = 0;
  for (const auto& s : ds) {
    coarse_n += flows_for_session(
                    s.record, {.active_timeout_s = 600.0,
                               .inactive_timeout_s = 60.0})
                    .size();
    fine_n += flows_for_session(s.record, {.active_timeout_s = 10.0,
                                           .inactive_timeout_s = 10.0})
                  .size();
  }
  EXPECT_GT(fine_n, coarse_n);
}

TEST(FlowsForSession, BytesMatchPacketView) {
  const auto ds = small_dataset(3, 3);
  for (const auto& s : ds) {
    const auto flows = flows_for_session(s.record);
    double flow_dl = 0.0;
    for (const auto& f : flows) flow_dl += f.dl_bytes;
    // Downlink payload in the HTTP log is a lower bound (flow bytes
    // include headers and retransmissions).
    double http_dl = 0.0;
    for (const auto& t : s.record.http) http_dl += t.dl_bytes;
    EXPECT_GT(flow_dl, http_dl);
    EXPECT_LT(flow_dl, http_dl * 1.2);
  }
}

TEST(DnsForSession, OneLookupPerHostBeforeFirstUse) {
  const auto ds = small_dataset(3, 4);
  for (const auto& s : ds) {
    const auto dns = dns_for_session(s.record);
    ASSERT_FALSE(dns.empty());
    std::set<std::string> names;
    for (const auto& r : dns) {
      EXPECT_TRUE(names.insert(r.name).second) << "duplicate lookup";
      EXPECT_EQ(r.ip, trace::server_ip_for_host(r.name));
    }
    // Every host in the HTTP log got resolved.
    for (const auto& t : s.record.http) {
      EXPECT_TRUE(names.count(t.host)) << t.host;
    }
  }
}

TEST(DnsIdentification, RecoversVideoFlowsEndToEnd) {
  const auto ds = small_dataset(4, 5);
  for (const auto& s : ds) {
    const auto flows = flows_for_session(s.record);
    const auto dns = dns_for_session(s.record);
    const auto video =
        trace::identify_video_flows(flows, dns, "svc1video.example");
    // All of this session's flows are video-service flows.
    EXPECT_EQ(video.size(), flows.size());
    // A foreign suffix matches nothing.
    EXPECT_TRUE(
        trace::identify_video_flows(flows, dns, "othersvc.example").empty());
  }
}

TEST(MakeFlowDataset, ShapeAndDeterminism) {
  const auto ds = small_dataset(20, 6);
  const auto a = make_flow_dataset(ds, QoeTarget::kCombined);
  EXPECT_EQ(a.size(), 20u);
  EXPECT_EQ(a.num_features(), 38u);
  const auto b = make_flow_dataset(ds, QoeTarget::kCombined);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto ra = a.row(i);
    const auto rb = b.row(i);
    for (std::size_t j = 0; j < ra.size(); ++j) EXPECT_EQ(ra[j], rb[j]);
    EXPECT_EQ(a.label(i), ds[i].labels.combined);
  }
}

TEST(MakeFlowDataset, AllFinite) {
  const auto ds = small_dataset(15, 7);
  const auto data = make_flow_dataset(
      ds, QoeTarget::kCombined, {.active_timeout_s = 15.0,
                                 .inactive_timeout_s = 8.0});
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (double v : data.row(i)) EXPECT_TRUE(std::isfinite(v));
  }
}

}  // namespace
}  // namespace droppkt::core
