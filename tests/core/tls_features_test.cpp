#include "core/tls_features.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/expect.hpp"
#include "util/rng.hpp"

namespace droppkt::core {
namespace {

trace::TlsTransaction txn(double start, double end, double ul, double dl,
                          const std::string& sni = "cdn.example") {
  return {.start_s = start, .end_s = end, .ul_bytes = ul, .dl_bytes = dl,
          .sni = sni, .http_count = 1};
}

std::size_t idx(const std::string& name, const TlsFeatureConfig& cfg = {}) {
  const auto names = tls_feature_names(cfg);
  const auto it = std::find(names.begin(), names.end(), name);
  EXPECT_NE(it, names.end()) << name;
  return static_cast<std::size_t>(it - names.begin());
}

TEST(TlsFeatureNames, PaperCountIs38) {
  EXPECT_EQ(tls_feature_names().size(), 38u);
  EXPECT_EQ(session_level_feature_names().size(), 4u);
  EXPECT_EQ(transaction_stat_feature_names().size(), 18u);
  EXPECT_EQ(temporal_feature_names({}).size(), 16u);
}

TEST(TlsFeatureNames, MatchTable1) {
  const auto names = tls_feature_names();
  for (const char* expected :
       {"SDR_DL", "SDR_UL", "SES_DUR", "TRANS_PER_SEC", "DL_SIZE_MIN",
        "DL_SIZE_MED", "DL_SIZE_MAX", "UL_SIZE_MED", "DUR_MAX", "TDR_MED",
        "D2U_MED", "IAT_MIN", "CUM_DL_30s", "CUM_UL_1200s"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << expected;
  }
}

TEST(TlsFeatureNames, CustomIntervalsChangeTemporalNames) {
  TlsFeatureConfig cfg;
  cfg.interval_ends_s = {10.0, 20.0};
  const auto names = tls_feature_names(cfg);
  EXPECT_EQ(names.size(), 4u + 18u + 4u);
  EXPECT_NE(std::find(names.begin(), names.end(), "CUM_DL_10s"), names.end());
}

TEST(TlsFeatures, EmptyLogAllZero) {
  const auto f = extract_tls_features({});
  EXPECT_EQ(f.size(), 38u);
  for (double v : f) EXPECT_EQ(v, 0.0);
}

TEST(TlsFeatures, SessionLevelValues) {
  // Two transactions, 10 s apart, total 100 s span.
  const trace::TlsLog log{txn(0.0, 50.0, 1000.0, 1e6),
                          txn(10.0, 100.0, 3000.0, 3e6)};
  const auto f = extract_tls_features(log);
  EXPECT_NEAR(f[idx("SES_DUR")], 100.0, 1e-9);
  EXPECT_NEAR(f[idx("SDR_DL")], 4e6 * 8.0 / 1000.0 / 100.0, 1e-9);
  EXPECT_NEAR(f[idx("SDR_UL")], 4000.0 * 8.0 / 1000.0 / 100.0, 1e-9);
  EXPECT_NEAR(f[idx("TRANS_PER_SEC")], 0.02, 1e-9);
}

TEST(TlsFeatures, TransactionStats) {
  const trace::TlsLog log{txn(0.0, 10.0, 1000.0, 1e6),
                          txn(5.0, 10.0, 2000.0, 4e6),
                          txn(20.0, 30.0, 1000.0, 2e6)};
  const auto f = extract_tls_features(log);
  EXPECT_EQ(f[idx("DL_SIZE_MIN")], 1e6);
  EXPECT_EQ(f[idx("DL_SIZE_MED")], 2e6);
  EXPECT_EQ(f[idx("DL_SIZE_MAX")], 4e6);
  EXPECT_EQ(f[idx("UL_SIZE_MAX")], 2000.0);
  EXPECT_EQ(f[idx("DUR_MIN")], 5.0);
  EXPECT_EQ(f[idx("DUR_MAX")], 10.0);
  // TDR of the second transaction: 4 MB over 5 s = 6400 kbps (max).
  EXPECT_NEAR(f[idx("TDR_MAX")], 4e6 * 8.0 / 1000.0 / 5.0, 1e-6);
  // D2U: 1000, 2000, 2000.
  EXPECT_NEAR(f[idx("D2U_MED")], 2000.0, 1e-9);
  // IAT from sorted starts {0,5,20}: {5,15}.
  EXPECT_EQ(f[idx("IAT_MIN")], 5.0);
  EXPECT_EQ(f[idx("IAT_MAX")], 15.0);
  EXPECT_EQ(f[idx("IAT_MED")], 10.0);
}

TEST(TlsFeatures, SingleTransactionHasZeroIat) {
  const trace::TlsLog log{txn(0.0, 10.0, 100.0, 1000.0)};
  const auto f = extract_tls_features(log);
  EXPECT_EQ(f[idx("IAT_MIN")], 0.0);
  EXPECT_EQ(f[idx("IAT_MAX")], 0.0);
}

TEST(TlsFeatures, ZeroUplinkD2uIsZeroNotInf) {
  trace::TlsLog log{txn(0.0, 1.0, 0.0, 1000.0)};
  const auto f = extract_tls_features(log);
  EXPECT_EQ(f[idx("D2U_MED")], 0.0);
}

TEST(TlsFeatures, CumulativeFullOverlap) {
  // One transaction entirely inside the first interval.
  const trace::TlsLog log{txn(0.0, 10.0, 500.0, 2e6)};
  const auto f = extract_tls_features(log);
  EXPECT_NEAR(f[idx("CUM_DL_30s")], 2e6, 1e-6);
  EXPECT_NEAR(f[idx("CUM_UL_30s")], 500.0, 1e-9);
  EXPECT_NEAR(f[idx("CUM_DL_1200s")], 2e6, 1e-6);
}

TEST(TlsFeatures, CumulativePartialOverlapProportional) {
  // Transaction spans 0..60 s; exactly half overlaps the 30 s window.
  const trace::TlsLog log{txn(0.0, 60.0, 1000.0, 6e6)};
  const auto f = extract_tls_features(log);
  EXPECT_NEAR(f[idx("CUM_DL_30s")], 3e6, 1e-6);
  EXPECT_NEAR(f[idx("CUM_DL_60s")], 6e6, 1e-6);
}

TEST(TlsFeatures, CumulativeMonotoneInWindow) {
  util::Rng rng(1);
  trace::TlsLog log;
  double t = 0.0;
  for (int i = 0; i < 30; ++i) {
    const double dur = rng.uniform(1.0, 40.0);
    log.push_back(txn(t, t + dur, rng.uniform(100.0, 5000.0),
                      rng.uniform(1e4, 1e7)));
    t += rng.uniform(0.5, 30.0);
  }
  const auto f = extract_tls_features(log);
  const auto names = tls_feature_names();
  double prev = -1.0;
  for (const auto& name : names) {
    if (name.rfind("CUM_DL_", 0) == 0) {
      const double v = f[idx(name)];
      EXPECT_GE(v, prev);
      prev = v;
    }
  }
}

TEST(TlsFeatures, TimeShiftOnlyAffectsNothingWhenRelative) {
  // Shifting all transactions by a constant changes nothing because
  // features are computed relative to the first start.
  trace::TlsLog base{txn(0.0, 10.0, 100.0, 1e5), txn(3.0, 20.0, 300.0, 3e5)};
  trace::TlsLog shifted = base;
  for (auto& t : shifted) {
    t.start_s += 500.0;
    t.end_s += 500.0;
  }
  const auto fa = extract_tls_features(base);
  const auto fb = extract_tls_features(shifted);
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_NEAR(fa[i], fb[i], 1e-6) << tls_feature_names()[i];
  }
}

TEST(TlsFeatures, OrderInvariant) {
  trace::TlsLog log{txn(5.0, 30.0, 100.0, 1e5), txn(0.0, 10.0, 300.0, 3e5),
                    txn(2.0, 50.0, 200.0, 2e5)};
  auto reversed = log;
  std::reverse(reversed.begin(), reversed.end());
  const auto fa = extract_tls_features(log);
  const auto fb = extract_tls_features(reversed);
  for (std::size_t i = 0; i < fa.size(); ++i) {
    // Summation order may differ, so compare up to rounding.
    EXPECT_NEAR(fa[i], fb[i], std::abs(fa[i]) * 1e-12 + 1e-12);
  }
}

TEST(TlsFeatures, RejectsMalformedTransaction) {
  const trace::TlsLog log{txn(10.0, 5.0, 100.0, 100.0)};
  EXPECT_THROW(extract_tls_features(log), droppkt::ContractViolation);
}

TEST(TlsFeatures, RejectsBadIntervalConfig) {
  TlsFeatureConfig cfg;
  cfg.interval_ends_s = {-5.0};
  EXPECT_THROW(extract_tls_features({txn(0, 1, 1, 1)}, cfg),
               droppkt::ContractViolation);
}

// Property: features are finite and byte-scaling scales volume features.
class TlsFeatureProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TlsFeatureProperty, FiniteAndScaleCovariant) {
  util::Rng rng(GetParam());
  trace::TlsLog log;
  double t = 0.0;
  const auto n = static_cast<std::size_t>(rng.uniform_int(1, 40));
  for (std::size_t i = 0; i < n; ++i) {
    log.push_back(txn(t, t + rng.uniform(0.5, 60.0), rng.uniform(1.0, 5e3),
                      rng.uniform(1.0, 1e7)));
    t += rng.uniform(0.1, 20.0);
  }
  const auto f = extract_tls_features(log);
  for (double v : f) ASSERT_TRUE(std::isfinite(v));

  // Doubling all byte counts doubles every byte-denominated feature.
  trace::TlsLog doubled = log;
  for (auto& x : doubled) {
    x.ul_bytes *= 2.0;
    x.dl_bytes *= 2.0;
  }
  const auto f2 = extract_tls_features(doubled);
  const auto names = tls_feature_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto& name = names[i];
    const bool byte_scaled =
        name.rfind("SDR_", 0) == 0 || name.rfind("CUM_", 0) == 0 ||
        name.rfind("DL_SIZE", 0) == 0 || name.rfind("UL_SIZE", 0) == 0 ||
        name.rfind("TDR", 0) == 0;
    if (byte_scaled) {
      EXPECT_NEAR(f2[i], 2.0 * f[i], std::abs(f[i]) * 1e-9 + 1e-9) << name;
    }
    const bool scale_invariant =
        name == "SES_DUR" || name == "TRANS_PER_SEC" ||
        name.rfind("DUR_", 0) == 0 || name.rfind("IAT_", 0) == 0 ||
        name.rfind("D2U_", 0) == 0;
    if (scale_invariant) {
      EXPECT_NEAR(f2[i], f[i], std::abs(f[i]) * 1e-9 + 1e-9) << name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TlsFeatureProperty,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace droppkt::core
