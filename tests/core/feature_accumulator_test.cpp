#include "core/feature_accumulator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/tls_features.hpp"
#include "util/expect.hpp"
#include "util/rng.hpp"

namespace droppkt::core {
namespace {

using util::Rng;

/// Randomized proxy-shaped log: overlapping transactions, heavy-tailed
/// sizes, occasional zero-duration and zero-upload records.
trace::TlsLog random_log(Rng& rng, std::size_t n) {
  trace::TlsLog log;
  log.reserve(n);
  double t = rng.uniform(0.0, 3.0);
  for (std::size_t i = 0; i < n; ++i) {
    trace::TlsTransaction x;
    x.start_s = t;
    x.end_s = t + (rng.uniform01() < 0.08 ? 0.0 : rng.exponential(0.15));
    x.dl_bytes = rng.uniform01() < 0.05 ? 0.0 : rng.exponential(1e-5);
    x.ul_bytes = rng.uniform01() < 0.12 ? 0.0 : rng.exponential(1e-3);
    log.push_back(x);
    t += rng.exponential(0.4);
  }
  return log;
}

void shuffle_log(trace::TlsLog& log, Rng& rng) {
  for (std::size_t i = log.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.uniform_int(0, i - 1));
    std::swap(log[i - 1], log[j]);
  }
}

std::vector<double> accumulate(const trace::TlsLog& log,
                               const TlsFeatureConfig& config = {}) {
  TlsFeatureAccumulator acc(config);
  for (const auto& t : log) acc.observe(t);
  return acc.snapshot();
}

// EXPECT_EQ on doubles is exact — the contract is bit-identity, not
// tolerance.
void expect_bit_identical(const std::vector<double>& a,
                          const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "feature " << i;
  }
}

TEST(TlsFeatureAccumulator, EmptyLogIsAllZeros) {
  TlsFeatureAccumulator acc;
  const auto snap = acc.snapshot();
  EXPECT_EQ(snap.size(), tls_feature_count());
  for (double v : snap) EXPECT_EQ(v, 0.0);
  expect_bit_identical(snap, extract_tls_features({}));
}

TEST(TlsFeatureAccumulator, FeatureCountMatchesNames) {
  TlsFeatureConfig extended;
  extended.extended_stats = true;
  TlsFeatureConfig custom;
  custom.interval_ends_s = {5.0, 20.0};
  for (const auto& config :
       {TlsFeatureConfig{}, extended, custom}) {
    EXPECT_EQ(tls_feature_count(config), tls_feature_names(config).size());
    EXPECT_EQ(TlsFeatureAccumulator(config).feature_count(),
              tls_feature_names(config).size());
  }
}

TEST(TlsFeatureAccumulator, BitIdenticalToBatchOnRandomLogs) {
  Rng rng(1234);
  for (std::size_t trial = 0; trial < 50; ++trial) {
    const auto log =
        random_log(rng, 1 + static_cast<std::size_t>(rng.uniform_int(0, 99)));
    expect_bit_identical(accumulate(log), extract_tls_features(log));
  }
}

TEST(TlsFeatureAccumulator, ObservationOrderIsIrrelevant) {
  Rng rng(99);
  for (std::size_t trial = 0; trial < 30; ++trial) {
    auto log =
        random_log(rng, 2 + static_cast<std::size_t>(rng.uniform_int(0, 80)));
    const auto batch = extract_tls_features(log);
    // Several shuffles per log, including fully reversed (worst case for
    // the interval-window rebuild: first_start decreases every step).
    std::reverse(log.begin(), log.end());
    expect_bit_identical(accumulate(log), batch);
    for (int s = 0; s < 3; ++s) {
      shuffle_log(log, rng);
      expect_bit_identical(accumulate(log), batch);
    }
  }
}

TEST(TlsFeatureAccumulator, ExtendedStatsAndCustomIntervalsMatchBatch) {
  TlsFeatureConfig extended;
  extended.extended_stats = true;
  TlsFeatureConfig custom;
  custom.extended_stats = true;
  custom.interval_ends_s = {2.0, 7.5, 30.0, 240.0};
  Rng rng(4321);
  for (const auto& config : {extended, custom}) {
    for (std::size_t trial = 0; trial < 20; ++trial) {
      auto log = random_log(
          rng, 1 + static_cast<std::size_t>(rng.uniform_int(0, 60)));
      const auto batch = extract_tls_features(log, config);
      shuffle_log(log, rng);
      expect_bit_identical(accumulate(log, config), batch);
    }
  }
}

TEST(TlsFeatureAccumulator, SnapshotAtMatchesTruncatePlusExtract) {
  Rng rng(777);
  TlsFeatureConfig extended;
  extended.extended_stats = true;
  for (const auto& config : {TlsFeatureConfig{}, extended}) {
    TlsFeatureAccumulator acc(config);
    std::vector<double> at(acc.feature_count());
    for (std::size_t trial = 0; trial < 25; ++trial) {
      auto log = random_log(
          rng, 1 + static_cast<std::size_t>(rng.uniform_int(0, 60)));
      acc.reset();
      // Shuffled observation: snapshot_at must not depend on order either.
      shuffle_log(log, rng);
      for (const auto& t : log) acc.observe(t);
      // Horizons from deep inside the session to far past its end (the
      // past-the-end case exercises the snapshot_into fast path).
      for (const double h : {0.5, 5.0, 20.0, 60.0, 1e6}) {
        acc.snapshot_at(h, at);
        const auto expected =
            extract_tls_features(truncate_tls_log(log, h), config);
        ASSERT_EQ(at.size(), expected.size());
        for (std::size_t i = 0; i < at.size(); ++i) {
          EXPECT_EQ(at[i], expected[i])
              << "feature " << i << " at horizon " << h;
        }
      }
    }
  }
}

TEST(TlsFeatureAccumulator, ResetReusesCleanly) {
  Rng rng(31);
  TlsFeatureAccumulator acc;
  std::vector<double> row(acc.feature_count());
  for (std::size_t trial = 0; trial < 10; ++trial) {
    const auto log =
        random_log(rng, 1 + static_cast<std::size_t>(rng.uniform_int(0, 40)));
    acc.reset();
    for (const auto& t : log) acc.observe(t);
    acc.snapshot_into(row);
    expect_bit_identical(row, extract_tls_features(log));
    EXPECT_EQ(acc.transactions(), log.size());
  }
  acc.reset();
  EXPECT_EQ(acc.transactions(), 0u);
  acc.snapshot_into(row);
  for (double v : row) EXPECT_EQ(v, 0.0);
}

TEST(TlsFeatureAccumulator, NumericObserveMatchesTransactionObserve) {
  Rng rng(55);
  const auto log = random_log(rng, 30);
  TlsFeatureAccumulator a, b;
  for (const auto& t : log) {
    a.observe(t);
    b.observe(t.start_s, t.end_s, t.ul_bytes, t.dl_bytes);
  }
  expect_bit_identical(a.snapshot(), b.snapshot());
}

TEST(TlsFeatureAccumulator, ContractViolations) {
  TlsFeatureConfig bad;
  bad.interval_ends_s = {30.0, -1.0};
  EXPECT_THROW(TlsFeatureAccumulator{bad}, droppkt::ContractViolation);

  TlsFeatureAccumulator acc;
  trace::TlsTransaction backwards;
  backwards.start_s = 5.0;
  backwards.end_s = 4.0;
  EXPECT_THROW(acc.observe(backwards), droppkt::ContractViolation);

  std::vector<double> wrong(acc.feature_count() + 1);
  EXPECT_THROW(acc.snapshot_into(wrong), droppkt::ContractViolation);
  EXPECT_THROW(acc.snapshot_at(10.0, wrong), droppkt::ContractViolation);
  std::vector<double> right(acc.feature_count());
  EXPECT_THROW(acc.snapshot_at(0.0, right), droppkt::ContractViolation);
}

}  // namespace
}  // namespace droppkt::core
