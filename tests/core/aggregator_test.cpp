#include "core/aggregator.hpp"

#include <gtest/gtest.h>

#include "util/expect.hpp"

namespace droppkt::core {
namespace {

TEST(WilsonInterval, ZeroTrialsIsVacuous) {
  const auto ci = wilson_interval(0, 0);
  EXPECT_EQ(ci.low, 0.0);
  EXPECT_EQ(ci.high, 1.0);
}

TEST(WilsonInterval, ContainsPointEstimate) {
  for (std::size_t k : {0u, 3u, 10u, 20u}) {
    const auto ci = wilson_interval(k, 20);
    const double p = k / 20.0;
    EXPECT_LE(ci.low, p + 1e-12);
    EXPECT_GE(ci.high, p - 1e-12);
    EXPECT_GE(ci.low, 0.0);
    EXPECT_LE(ci.high, 1.0);
  }
}

TEST(WilsonInterval, NarrowsWithSamples) {
  const auto small = wilson_interval(5, 10);
  const auto large = wilson_interval(500, 1000);
  EXPECT_LT(large.high - large.low, small.high - small.low);
}

TEST(WilsonInterval, KnownValue) {
  // 8/10 at z=1.96: Wilson interval ~ (0.49, 0.94).
  const auto ci = wilson_interval(8, 10);
  EXPECT_NEAR(ci.low, 0.49, 0.02);
  EXPECT_NEAR(ci.high, 0.94, 0.02);
}

TEST(WilsonInterval, Validates) {
  EXPECT_THROW(wilson_interval(5, 3), droppkt::ContractViolation);
  EXPECT_THROW(wilson_interval(1, 2, 0.0), droppkt::ContractViolation);
}

TEST(WilsonInterval, ZeroSuccessesAtTinyN) {
  // p-hat = 0: the lower bound is exactly 0, the upper bound is well away
  // from both endpoints (5 clean trials don't rule out a sizable rate).
  const auto ci = wilson_interval(0, 5);
  EXPECT_NEAR(ci.low, 0.0, 1e-12);
  EXPECT_GT(ci.high, 0.3);
  EXPECT_LT(ci.high, 0.7);
}

TEST(WilsonInterval, AllSuccessesAtTinyN) {
  // p-hat = 1: upper bound pins to 1, lower bound stays clear of it —
  // 3/3 is nowhere near credible evidence of a high rate.
  const auto ci = wilson_interval(3, 3);
  EXPECT_NEAR(ci.high, 1.0, 1e-12);
  EXPECT_GT(ci.low, 0.2);
  EXPECT_LT(ci.low, 0.7);
}

TEST(WilsonIntervalReal, MatchesIntegerVersionOnWholeCounts) {
  for (std::size_t k : {0u, 4u, 10u}) {
    const auto integral = wilson_interval(k, 10);
    const auto real = wilson_interval_real(static_cast<double>(k), 10.0);
    EXPECT_DOUBLE_EQ(real.low, integral.low);
    EXPECT_DOUBLE_EQ(real.high, integral.high);
  }
}

TEST(WilsonIntervalReal, FractionalCountsInterpolate) {
  // Effective counts between two whole-number cases land between their
  // intervals: decaying a window shrinks n and widens the interval.
  const auto small = wilson_interval_real(4.5, 9.0);
  const auto large = wilson_interval_real(9.0, 18.0);
  EXPECT_LT(large.high - large.low, small.high - small.low);
  EXPECT_EQ(wilson_interval_real(0.0, 0.0).low, 0.0);
  EXPECT_EQ(wilson_interval_real(0.0, 0.0).high, 1.0);
}

TEST(WilsonIntervalReal, Validates) {
  EXPECT_THROW(wilson_interval_real(2.0, 1.0), droppkt::ContractViolation);
  EXPECT_THROW(wilson_interval_real(-0.5, 1.0), droppkt::ContractViolation);
  EXPECT_THROW(wilson_interval_real(0.5, 1.0, 0.0),
               droppkt::ContractViolation);
}

TEST(LocationAggregator, CountsPerLocation) {
  LocationAggregator agg;
  agg.record("cell-1", 0);
  agg.record("cell-1", 2);
  agg.record("cell-2", 1);
  EXPECT_EQ(agg.total_sessions(), 3u);
  const auto& locs = agg.locations();
  EXPECT_EQ(locs.at("cell-1").sessions, 2u);
  EXPECT_EQ(locs.at("cell-1").low_qoe, 1u);
  EXPECT_EQ(locs.at("cell-2").low_qoe, 0u);
  EXPECT_NEAR(locs.at("cell-1").rate(), 0.5, 1e-12);
}

TEST(LocationAggregator, FlagsOnlyCredciblyDegraded) {
  AggregatorConfig cfg;
  cfg.alert_rate = 0.5;
  cfg.min_sessions = 10;
  LocationAggregator agg(cfg);
  // "bad": 18/20 low -> lower bound well above 0.5.
  for (int i = 0; i < 20; ++i) agg.record("bad", i < 18 ? 0 : 2);
  // "noisy": 6/10 low -> above 0.5 in rate but not credibly.
  for (int i = 0; i < 10; ++i) agg.record("noisy", i < 6 ? 0 : 2);
  // "good": 1/20 low.
  for (int i = 0; i < 20; ++i) agg.record("good", i < 1 ? 0 : 2);
  // "small": 3/3 low but under min_sessions.
  for (int i = 0; i < 3; ++i) agg.record("small", 0);

  const auto flagged = agg.flagged();
  ASSERT_EQ(flagged.size(), 1u);
  EXPECT_EQ(flagged[0].location, "bad");
}

TEST(LocationAggregator, FlaggedSortedWorstFirst) {
  AggregatorConfig cfg;
  cfg.alert_rate = 0.2;
  cfg.min_sessions = 10;
  LocationAggregator agg(cfg);
  for (int i = 0; i < 40; ++i) agg.record("worse", i < 36 ? 0 : 2);
  for (int i = 0; i < 40; ++i) agg.record("badish", i < 24 ? 0 : 2);
  const auto flagged = agg.flagged();
  ASSERT_EQ(flagged.size(), 2u);
  EXPECT_EQ(flagged[0].location, "worse");
}

TEST(LocationAggregator, MinSessionsBoundaryIsInclusive) {
  AggregatorConfig cfg;
  cfg.alert_rate = 0.5;
  cfg.min_sessions = 10;
  LocationAggregator agg(cfg);
  // 9 all-low sessions: under the floor, never flagged.
  for (int i = 0; i < 9; ++i) agg.record("edge", 0);
  EXPECT_TRUE(agg.flagged().empty());
  // The 10th reaches the floor exactly; 10/10 low is credible.
  agg.record("edge", 0);
  ASSERT_EQ(agg.flagged().size(), 1u);
  EXPECT_EQ(agg.flagged()[0].location, "edge");
}

TEST(LocationAggregator, FlaggedTieOrderingIsTotal) {
  AggregatorConfig cfg;
  cfg.alert_rate = 0.2;
  cfg.min_sessions = 10;
  LocationAggregator agg(cfg);
  // Same 80% rate; "bigger" has more sessions, "b-same"/"a-same" are
  // identical so the name decides. Rate desc, sessions desc, name asc.
  for (int i = 0; i < 40; ++i) agg.record("bigger", i < 32 ? 0 : 2);
  for (int i = 0; i < 20; ++i) agg.record("b-same", i < 16 ? 0 : 2);
  for (int i = 0; i < 20; ++i) agg.record("a-same", i < 16 ? 0 : 2);
  for (int i = 0; i < 20; ++i) agg.record("worst", i < 19 ? 0 : 2);
  const auto flagged = agg.flagged();
  ASSERT_EQ(flagged.size(), 4u);
  EXPECT_EQ(flagged[0].location, "worst");    // highest rate
  EXPECT_EQ(flagged[1].location, "bigger");   // 0.8, more sessions
  EXPECT_EQ(flagged[2].location, "a-same");   // 0.8, 20, name asc
  EXPECT_EQ(flagged[3].location, "b-same");
}

TEST(LocationAggregator, IntervalForUnseenLocation) {
  const LocationAggregator agg;
  const auto ci = agg.interval("nowhere");
  EXPECT_EQ(ci.low, 0.0);
  EXPECT_EQ(ci.high, 1.0);
}

TEST(LocationAggregator, Validates) {
  AggregatorConfig bad;
  bad.alert_rate = 0.0;
  EXPECT_THROW(LocationAggregator{bad}, droppkt::ContractViolation);
  LocationAggregator agg;
  EXPECT_THROW(agg.record("", 0), droppkt::ContractViolation);
}

}  // namespace
}  // namespace droppkt::core
