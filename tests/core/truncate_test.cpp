#include <gtest/gtest.h>

#include <cmath>

#include "core/tls_features.hpp"
#include "util/expect.hpp"

namespace droppkt::core {
namespace {

trace::TlsTransaction txn(double start, double end, double ul, double dl) {
  return {.start_s = start, .end_s = end, .ul_bytes = ul, .dl_bytes = dl,
          .sni = "h", .http_count = 1};
}

TEST(TruncateTlsLog, EmptyStaysEmpty) {
  EXPECT_TRUE(truncate_tls_log({}, 60.0).empty());
}

TEST(TruncateTlsLog, DropsLateTransactions) {
  const trace::TlsLog log{txn(0.0, 5.0, 10, 100), txn(100.0, 110.0, 10, 100)};
  const auto out = truncate_tls_log(log, 50.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].end_s, 5.0);
}

TEST(TruncateTlsLog, KeepsCompletedTransactionsIntact) {
  const trace::TlsLog log{txn(0.0, 20.0, 10, 100)};
  const auto out = truncate_tls_log(log, 30.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].dl_bytes, 100.0);
  EXPECT_EQ(out[0].end_s, 20.0);
}

TEST(TruncateTlsLog, ClipsOpenTransactionsProportionally) {
  const trace::TlsLog log{txn(0.0, 100.0, 40, 1000)};
  const auto out = truncate_tls_log(log, 25.0);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].end_s, 25.0);
  EXPECT_NEAR(out[0].dl_bytes, 250.0, 1e-9);
  EXPECT_NEAR(out[0].ul_bytes, 10.0, 1e-9);
}

TEST(TruncateTlsLog, HorizonRelativeToFirstStart) {
  // Log starting at t=500: the horizon counts from there.
  const trace::TlsLog log{txn(500.0, 510.0, 10, 100),
                          txn(560.0, 570.0, 10, 100)};
  const auto out = truncate_tls_log(log, 30.0);
  ASSERT_EQ(out.size(), 1u);
}

TEST(TruncateTlsLog, FullHorizonIsIdentity) {
  const trace::TlsLog log{txn(0.0, 5.0, 10, 100), txn(2.0, 30.0, 20, 200)};
  const auto out = truncate_tls_log(log, 1e6);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].dl_bytes, 200.0);
}

TEST(TruncateTlsLog, MonotoneInHorizon) {
  trace::TlsLog log;
  for (int i = 0; i < 20; ++i) {
    log.push_back(txn(i * 10.0, i * 10.0 + 15.0, 10, 1000));
  }
  double prev_bytes = 0.0;
  std::size_t prev_n = 0;
  for (double h : {10.0, 40.0, 80.0, 160.0, 400.0}) {
    const auto out = truncate_tls_log(log, h);
    double bytes = 0.0;
    for (const auto& t : out) bytes += t.dl_bytes;
    EXPECT_GE(out.size(), prev_n);
    EXPECT_GE(bytes, prev_bytes);
    prev_n = out.size();
    prev_bytes = bytes;
  }
}

TEST(TruncateTlsLog, TruncatedViewStillFeaturizable) {
  trace::TlsLog log{txn(0.0, 120.0, 50, 5000), txn(10.0, 20.0, 10, 100)};
  const auto out = truncate_tls_log(log, 30.0);
  const auto f = extract_tls_features(out);
  EXPECT_EQ(f.size(), 38u);
  for (double v : f) EXPECT_TRUE(std::isfinite(v));
}

TEST(TruncateTlsLog, RejectsNonPositiveHorizon) {
  EXPECT_THROW(truncate_tls_log({}, 0.0), droppkt::ContractViolation);
}

}  // namespace
}  // namespace droppkt::core
