#include "core/dataset_builder.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

#include "util/expect.hpp"

namespace droppkt::core {
namespace {

DatasetConfig small(std::size_t n = 60, std::uint64_t seed = 1) {
  DatasetConfig cfg;
  cfg.num_sessions = n;
  cfg.seed = seed;
  cfg.trace_pool_size = 40;
  cfg.catalog_size = 20;
  return cfg;
}

TEST(PaperSessionCount, MatchesPaper) {
  // With no scale override these are the paper's Section 4.1 counts.
  ::unsetenv("DROPPKT_SESSIONS_SCALE");
  EXPECT_EQ(paper_session_count("Svc1"), 2111u);
  EXPECT_EQ(paper_session_count("Svc2"), 2216u);
  EXPECT_EQ(paper_session_count("Svc3"), 1440u);
  EXPECT_THROW(paper_session_count("SvcX"), droppkt::ContractViolation);
}

TEST(PaperSessionCount, ScaleEnvHonored) {
  ::setenv("DROPPKT_SESSIONS_SCALE", "0.1", 1);
  EXPECT_EQ(paper_session_count("Svc1"), 211u);
  ::setenv("DROPPKT_SESSIONS_SCALE", "boom", 1);
  EXPECT_EQ(paper_session_count("Svc1"), 2111u);  // invalid -> full scale
  ::unsetenv("DROPPKT_SESSIONS_SCALE");
}

TEST(BuildDataset, ProducesRequestedSessions) {
  const auto ds = build_dataset(has::svc1_profile(), small());
  EXPECT_EQ(ds.size(), 60u);
}

TEST(BuildDataset, Deterministic) {
  const auto a = build_dataset(has::svc2_profile(), small(30, 5));
  const auto b = build_dataset(has::svc2_profile(), small(30, 5));
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].record.video_id, b[i].record.video_id);
    EXPECT_EQ(a[i].record.tls.size(), b[i].record.tls.size());
    EXPECT_EQ(a[i].labels.combined, b[i].labels.combined);
  }
}

TEST(BuildDataset, SeedChangesData) {
  const auto a = build_dataset(has::svc1_profile(), small(30, 1));
  const auto b = build_dataset(has::svc1_profile(), small(30, 2));
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].record.tls.size() != b[i].record.tls.size()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(BuildDataset, RecordsWellFormed) {
  const auto ds = build_dataset(has::svc3_profile(), small(40, 3));
  for (const auto& s : ds) {
    EXPECT_EQ(s.record.service, "Svc3");
    EXPECT_FALSE(s.record.video_id.empty());
    EXPECT_GT(s.record.trace_avg_kbps, 0.0);
    EXPECT_GE(s.record.watch_duration_s, 10.0);
    EXPECT_LE(s.record.watch_duration_s, 1200.0);
    EXPECT_FALSE(s.record.tls.empty());
    EXPECT_FALSE(s.record.http.empty());
    EXPECT_GE(s.labels.combined, 0);
    EXPECT_LE(s.labels.combined, 2);
    EXPECT_EQ(s.labels.combined,
              std::min(s.labels.rebuffering, s.labels.video_quality));
  }
}

TEST(BuildDataset, LabelsConsistentWithGroundTruth) {
  const auto ds = build_dataset(has::svc1_profile(), small(40, 4));
  const auto svc = has::svc1_profile();
  for (const auto& s : ds) {
    const auto recomputed = compute_labels(s.record.ground_truth, svc);
    EXPECT_EQ(recomputed.combined, s.labels.combined);
    EXPECT_EQ(recomputed.rebuffering, s.labels.rebuffering);
    EXPECT_EQ(recomputed.video_quality, s.labels.video_quality);
  }
}

TEST(BuildDataset, ProducesLabelDiversity) {
  const auto ds = build_dataset(has::svc1_profile(), small(150, 6));
  std::set<int> classes;
  for (const auto& s : ds) classes.insert(s.labels.combined);
  EXPECT_EQ(classes.size(), 3u);  // all three classes appear
}

TEST(BuildDataset, UsesMultipleVideosAndEnvironments) {
  const auto ds = build_dataset(has::svc2_profile(), small(80, 7));
  std::set<std::string> videos;
  std::set<int> envs;
  for (const auto& s : ds) {
    videos.insert(s.record.video_id);
    envs.insert(static_cast<int>(s.record.environment));
  }
  EXPECT_GT(videos.size(), 5u);
  EXPECT_EQ(envs.size(), 3u);
}

TEST(BuildDataset, TlsTimesSessionRelative) {
  const auto ds = build_dataset(has::svc1_profile(), small(20, 8));
  for (const auto& s : ds) {
    double min_start = 1e18;
    for (const auto& t : s.record.tls) min_start = std::min(min_start, t.start_s);
    EXPECT_LT(min_start, 5.0);  // sessions start near t=0
  }
}

TEST(BuildBackToBack, StreamWellFormed) {
  const auto stream = build_back_to_back(has::svc1_profile(), 5, 1);
  EXPECT_EQ(stream.num_sessions, 5u);
  ASSERT_EQ(stream.merged.size(), stream.truth_new.size());
  std::size_t news = 0;
  for (bool b : stream.truth_new) news += b;
  EXPECT_EQ(news, 5u);  // exactly one "new" per session
  for (std::size_t i = 1; i < stream.merged.size(); ++i) {
    EXPECT_GE(stream.merged[i].start_s, stream.merged[i - 1].start_s);
  }
}

TEST(BuildBackToBack, SessionsActuallyConsecutive) {
  const auto stream = build_back_to_back(has::svc2_profile(), 3, 2);
  // New-session markers appear at strictly increasing times.
  double prev = -1.0;
  for (std::size_t i = 0; i < stream.merged.size(); ++i) {
    if (stream.truth_new[i]) {
      EXPECT_GT(stream.merged[i].start_s, prev);
      prev = stream.merged[i].start_s;
    }
  }
}

TEST(BuildBackToBack, RejectsZeroSessions) {
  EXPECT_THROW(build_back_to_back(has::svc1_profile(), 0, 1),
               droppkt::ContractViolation);
}

}  // namespace
}  // namespace droppkt::core
