#include <gtest/gtest.h>

#include <cstdio>

#include "core/estimator.hpp"
#include "util/expect.hpp"

namespace droppkt::core {
namespace {

LabeledDataset small_dataset(std::size_t n = 120, std::uint64_t seed = 1) {
  DatasetConfig cfg;
  cfg.num_sessions = n;
  cfg.seed = seed;
  cfg.trace_pool_size = 40;
  cfg.catalog_size = 20;
  return build_dataset(has::svc1_profile(), cfg);
}

TEST(EstimatorPersistence, RoundTripPredictionsIdentical) {
  const auto train = small_dataset(150, 1);
  const auto test = small_dataset(40, 2);
  QoeEstimator est;
  est.train(train);

  const std::string path = ::testing::TempDir() + "/droppkt_est.model";
  est.save_file(path);
  const QoeEstimator back = QoeEstimator::load_file(path);
  EXPECT_TRUE(back.trained());
  for (const auto& s : test) {
    EXPECT_EQ(back.predict(s.record.tls), est.predict(s.record.tls));
  }
  std::remove(path.c_str());
}

TEST(EstimatorPersistence, ConfigSurvives) {
  EstimatorConfig cfg;
  cfg.target = QoeTarget::kRebuffering;
  cfg.features.interval_ends_s = {20.0, 90.0, 400.0};
  QoeEstimator est(cfg);
  est.train(small_dataset(100, 3));

  const std::string path = ::testing::TempDir() + "/droppkt_est2.model";
  est.save_file(path);
  const QoeEstimator back = QoeEstimator::load_file(path);
  EXPECT_EQ(back.config().target, QoeTarget::kRebuffering);
  ASSERT_EQ(back.config().features.interval_ends_s.size(), 3u);
  EXPECT_EQ(back.config().features.interval_ends_s[1], 90.0);
  EXPECT_EQ(back.class_name(0), "high");  // rebuffering classes
  std::remove(path.c_str());
}

TEST(EstimatorPersistence, LoadedModelClassifiesAccurately) {
  const auto train = small_dataset(200, 4);
  const auto test = small_dataset(80, 5);
  QoeEstimator est;
  est.train(train);
  const std::string path = ::testing::TempDir() + "/droppkt_est3.model";
  est.save_file(path);
  const QoeEstimator back = QoeEstimator::load_file(path);

  std::size_t correct = 0;
  for (const auto& s : test) {
    correct += back.predict(s.record.tls) == s.labels.combined;
  }
  EXPECT_GT(static_cast<double>(correct) / test.size(), 0.6);
  std::remove(path.c_str());
}

TEST(EstimatorPersistence, UntrainedSaveThrows) {
  const QoeEstimator est;
  EXPECT_THROW(est.save_file(::testing::TempDir() + "/nope.model"),
               droppkt::ContractViolation);
}

TEST(EstimatorPersistence, MissingFileThrows) {
  EXPECT_THROW(QoeEstimator::load_file("/no/such/estimator.model"),
               std::runtime_error);
}

TEST(EstimatorPersistence, GarbageFileThrows) {
  const std::string path = ::testing::TempDir() + "/droppkt_garbage.model";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("definitely not a model\n1 2 3\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(QoeEstimator::load_file(path), droppkt::ParseError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace droppkt::core
