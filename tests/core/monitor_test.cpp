#include "core/monitor.hpp"

#include <gtest/gtest.h>

#include "core/dataset_builder.hpp"
#include "util/expect.hpp"

namespace droppkt::core {
namespace {

const QoeEstimator& trained_estimator() {
  static const QoeEstimator est = [] {
    DatasetConfig cfg;
    cfg.num_sessions = 200;
    cfg.seed = 17;
    cfg.trace_pool_size = 40;
    cfg.catalog_size = 20;
    QoeEstimator e;
    e.train(build_dataset(has::svc1_profile(), cfg));
    return e;
  }();
  return est;
}

trace::TlsTransaction txn(double start, const std::string& sni,
                          double dl = 1e6) {
  return {.start_s = start, .end_s = start + 8.0, .ul_bytes = 500.0,
          .dl_bytes = dl, .sni = sni, .http_count = 3};
}

TEST(StreamingMonitor, ValidatesConstruction) {
  QoeEstimator untrained;
  EXPECT_THROW(StreamingMonitor(untrained, [](const MonitoredSession&) {}),
               droppkt::ContractViolation);
  EXPECT_THROW(StreamingMonitor(trained_estimator(), nullptr),
               droppkt::ContractViolation);
}

TEST(StreamingMonitor, IdleTimeoutDelimitsSessions) {
  std::vector<MonitoredSession> out;
  MonitorConfig cfg;
  cfg.client_idle_timeout_s = 60.0;
  cfg.min_transactions = 2;
  StreamingMonitor mon(trained_estimator(),
                       [&](const MonitoredSession& s) { out.push_back(s); },
                       cfg);
  for (int i = 0; i < 4; ++i) mon.observe("c1", txn(i * 10.0, "a"));
  // Long idle, then more traffic.
  for (int i = 0; i < 4; ++i) mon.observe("c1", txn(300.0 + i * 10.0, "a"));
  EXPECT_EQ(out.size(), 1u);  // first session flushed by the gap
  mon.finish();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].transactions.size(), 4u);
  EXPECT_EQ(out[1].transactions.size(), 4u);
  EXPECT_EQ(out[0].client, "c1");
  EXPECT_LT(out[0].end_s, out[1].start_s);
}

TEST(StreamingMonitor, BurstBoundaryDetectedOnline) {
  std::vector<MonitoredSession> out;
  MonitorConfig cfg;
  cfg.min_transactions = 2;
  StreamingMonitor mon(trained_estimator(),
                       [&](const MonitoredSession& s) { out.push_back(s); },
                       cfg);
  // Session 1: servers a/b, overlapping with session 2's start.
  mon.observe("c1", txn(0.0, "a"));
  mon.observe("c1", txn(5.0, "b"));
  mon.observe("c1", txn(20.0, "a"));
  // Session 2 starts at t=40 with a burst to fresh servers.
  mon.observe("c1", txn(40.0, "c"));
  mon.observe("c1", txn(40.5, "d"));
  mon.observe("c1", txn(41.0, "e"));
  mon.observe("c1", txn(41.5, "f"));
  EXPECT_EQ(out.size(), 1u);  // boundary found without any idle gap
  EXPECT_EQ(out[0].transactions.size(), 3u);
  mon.finish();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].transactions.size(), 4u);
}

TEST(StreamingMonitor, ClientsAreIndependent) {
  std::vector<MonitoredSession> out;
  MonitorConfig cfg;
  cfg.min_transactions = 2;
  StreamingMonitor mon(trained_estimator(),
                       [&](const MonitoredSession& s) { out.push_back(s); },
                       cfg);
  // Interleaved clients; each has one session.
  for (int i = 0; i < 5; ++i) {
    mon.observe("alice", txn(i * 7.0, "a"));
    mon.observe("bob", txn(i * 7.0 + 1.0, "b"));
  }
  EXPECT_EQ(mon.open_clients(), 2u);
  mon.finish();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NE(out[0].client, out[1].client);
  EXPECT_EQ(mon.open_clients(), 0u);
}

TEST(StreamingMonitor, AdvanceTimeEvictsIdleClients) {
  std::vector<MonitoredSession> out;
  MonitorConfig cfg;
  cfg.client_idle_timeout_s = 60.0;
  cfg.min_transactions = 2;
  StreamingMonitor mon(trained_estimator(),
                       [&](const MonitoredSession& s) { out.push_back(s); },
                       cfg);
  for (int i = 0; i < 4; ++i) mon.observe("idle", txn(i * 10.0, "a"));
  mon.observe("fresh", txn(80.0, "b"));
  EXPECT_TRUE(out.empty());

  mon.advance_time(85.0);  // idle's last start is 30 -> not yet timed out
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(mon.open_clients(), 2u);

  mon.advance_time(95.0);  // 95 - 30 > 60: idle is evicted, fresh is not
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].client, "idle");
  EXPECT_EQ(out[0].transactions.size(), 4u);
  EXPECT_EQ(mon.open_clients(), 1u);

  // A record arriving after eviction opens a brand-new session.
  mon.observe("idle", txn(100.0, "a"));
  mon.observe("idle", txn(101.0, "a"));
  mon.finish();
  // idle's new 2-txn session is reported; fresh's single txn is noise.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].client, "idle");
  EXPECT_EQ(out[1].transactions.size(), 2u);
}

TEST(StreamingMonitor, TinySessionsDropped) {
  std::vector<MonitoredSession> out;
  MonitorConfig cfg;
  cfg.min_transactions = 3;
  StreamingMonitor mon(trained_estimator(),
                       [&](const MonitoredSession& s) { out.push_back(s); },
                       cfg);
  mon.observe("c", txn(0.0, "a"));  // a stray beacon connection
  mon.finish();
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(mon.sessions_reported(), 0u);
}

TEST(StreamingMonitor, RejectsOutOfOrderPerClient) {
  StreamingMonitor mon(trained_estimator(), [](const MonitoredSession&) {});
  mon.observe("c", txn(10.0, "a"));
  EXPECT_THROW(mon.observe("c", txn(5.0, "a")), droppkt::ContractViolation);
}

TEST(StreamingMonitor, EndToEndBackToBackStreams) {
  // Feed real simulated back-to-back sessions through the monitor and
  // check the session count is close to the truth.
  std::vector<MonitoredSession> out;
  StreamingMonitor mon(trained_estimator(),
                       [&](const MonitoredSession& s) { out.push_back(s); });
  std::size_t truth = 0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto stream = build_back_to_back(has::svc1_profile(), 5, seed);
    truth += stream.num_sessions;
    const std::string client = "client-" + std::to_string(seed);
    for (const auto& t : stream.merged) mon.observe(client, t);
  }
  mon.finish();
  EXPECT_GE(out.size(), truth / 2);       // most sessions recovered
  EXPECT_LE(out.size(), truth + truth / 2);
  for (const auto& s : out) {
    EXPECT_GE(s.predicted_class, 0);
    EXPECT_LE(s.predicted_class, 2);
    EXPECT_LE(s.start_s, s.end_s);
  }
}

TEST(StreamingMonitor, ProvisionalEstimatesMidSession) {
  std::vector<MonitoredSession> out;
  MonitorConfig cfg;
  cfg.min_transactions = 2;
  cfg.provisional_every = 2;
  StreamingMonitor mon(trained_estimator(),
                       [&](const MonitoredSession& s) { out.push_back(s); },
                       cfg);
  struct Seen {
    std::string client;
    std::size_t observed;
    int cls;
    double start_s, last_s;
  };
  std::vector<Seen> seen;
  mon.set_provisional_callback([&](const ProvisionalEstimate& e) {
    seen.push_back({std::string(e.client), e.transactions_observed,
                    e.predicted_class, e.session_start_s, e.last_activity_s});
  });

  trace::TlsLog fed;
  for (int i = 0; i < 7; ++i) {
    fed.push_back(txn(i * 5.0, "a"));
    mon.observe("c1", fed.back());
  }
  // Pending sizes 2, 4, 6 cross the every-2 cadence above min_transactions.
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(mon.provisionals_reported(), 3u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    const auto& e = seen[i];
    EXPECT_EQ(e.client, "c1");
    EXPECT_EQ(e.observed, 2 * (i + 1));
    EXPECT_EQ(e.start_s, 0.0);
    EXPECT_EQ(e.last_s, (2.0 * (i + 1) - 1.0) * 5.0);
    // The in-flight estimate is exactly what the estimator says about the
    // records observed so far — live accumulator == batch over the prefix.
    const trace::TlsLog prefix(fed.begin(),
                               fed.begin() + static_cast<std::ptrdiff_t>(
                                                 e.observed));
    EXPECT_EQ(e.cls, trained_estimator().predict(prefix));
  }
  mon.finish();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].predicted_class, trained_estimator().predict(fed));
}

TEST(StreamingMonitor, ProvisionalsOffByDefault) {
  StreamingMonitor mon(trained_estimator(), [](const MonitoredSession&) {});
  std::size_t fired = 0;
  mon.set_provisional_callback(
      [&](const ProvisionalEstimate&) { ++fired; });
  for (int i = 0; i < 8; ++i) mon.observe("c", txn(i * 5.0, "a"));
  mon.finish();
  EXPECT_EQ(fired, 0u);  // provisional_every defaults to 0 = disabled
  EXPECT_EQ(mon.provisionals_reported(), 0u);
}

TEST(StreamingMonitor, EmitsMatchBatchPredictionAfterBurstSplit) {
  // After a burst-boundary split the live accumulator is rebuilt from the
  // surviving records; both the head and the remainder must classify
  // exactly as the batch estimator would.
  std::vector<MonitoredSession> out;
  MonitorConfig cfg;
  cfg.min_transactions = 2;
  StreamingMonitor mon(trained_estimator(),
                       [&](const MonitoredSession& s) { out.push_back(s); },
                       cfg);
  mon.observe("c1", txn(0.0, "a"));
  mon.observe("c1", txn(5.0, "b"));
  mon.observe("c1", txn(20.0, "a"));
  mon.observe("c1", txn(40.0, "c"));
  mon.observe("c1", txn(40.5, "d"));
  mon.observe("c1", txn(41.0, "e"));
  mon.observe("c1", txn(41.5, "f"));
  mon.finish();
  ASSERT_EQ(out.size(), 2u);
  for (const auto& s : out) {
    EXPECT_EQ(s.predicted_class, trained_estimator().predict(s.transactions));
  }
}

TEST(StreamingMonitor, ViewSinkMatchesOwnedSink) {
  // The borrowed-span emit path must report exactly the sessions the owned
  // path does — same boundaries, classes, confidences, and timestamps —
  // while its views stay valid only inside the callback (checked by
  // copying through to_owned()).
  const auto stream = build_back_to_back(has::svc1_profile(), 4, 23);
  MonitorConfig cfg;
  cfg.client_idle_timeout_s = 120.0;

  std::vector<MonitoredSession> owned;
  StreamingMonitor mon_owned(
      trained_estimator(),
      [&](const MonitoredSession& s) { owned.push_back(s); }, cfg);
  for (const auto& t : stream.merged) mon_owned.observe("c", t);
  mon_owned.finish();

  std::vector<MonitoredSession> viewed;
  auto mon_view = StreamingMonitor::with_view_sink(
      trained_estimator(),
      [&](const MonitoredSessionView& v) {
        EXPECT_EQ(v.client, "c");
        viewed.push_back(v.to_owned());
      },
      cfg);
  for (const auto& t : stream.merged) mon_view.observe("c", t);
  mon_view.finish();

  ASSERT_EQ(viewed.size(), owned.size());
  ASSERT_GE(viewed.size(), 2u);
  for (std::size_t i = 0; i < owned.size(); ++i) {
    EXPECT_EQ(viewed[i].client, owned[i].client);
    EXPECT_EQ(viewed[i].transactions.size(), owned[i].transactions.size());
    EXPECT_EQ(viewed[i].predicted_class, owned[i].predicted_class);
    EXPECT_EQ(viewed[i].confidence, owned[i].confidence);
    EXPECT_EQ(viewed[i].start_s, owned[i].start_s);
    EXPECT_EQ(viewed[i].end_s, owned[i].end_s);
    EXPECT_EQ(viewed[i].detected_s, owned[i].detected_s);
  }
}

TEST(StreamingMonitor, MatchesOfflineSplitOnSingleClient) {
  // The online splitter should agree with the offline heuristic when fed
  // the same merged log.
  const auto stream = build_back_to_back(has::svc1_profile(), 6, 9);
  const auto offline = split_sessions(stream.merged);
  MonitorConfig cfg;
  cfg.client_idle_timeout_s = 1e9;  // isolate the burst heuristic
  std::size_t offline_kept = 0;
  for (const auto& s : offline) {
    offline_kept += s.size() >= cfg.min_transactions;
  }

  std::vector<MonitoredSession> out;
  StreamingMonitor mon(trained_estimator(),
                       [&](const MonitoredSession& s) { out.push_back(s); },
                       cfg);
  for (const auto& t : stream.merged) mon.observe("c", t);
  mon.finish();
  EXPECT_EQ(out.size(), offline_kept);
}

}  // namespace
}  // namespace droppkt::core
