#include "core/ml16_features.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace droppkt::core {
namespace {

trace::PacketRecord pkt(double ts, trace::Direction dir, std::uint32_t payload,
                        std::uint32_t flow = 0, bool retx = false) {
  return {.ts_s = ts, .dir = dir,
          .size_bytes = payload + 52, .payload_bytes = payload,
          .flow_id = flow, .retransmission = retx,
          .is_syn = false, .is_fin = false};
}

std::size_t idx(const std::string& name) {
  const auto names = ml16_feature_names();
  const auto it = std::find(names.begin(), names.end(), name);
  EXPECT_NE(it, names.end()) << name;
  return static_cast<std::size_t>(it - names.begin());
}

/// A canonical 2-chunk trace: request -> 100 KB response, idle, request ->
/// 200 KB response on the same flow.
trace::PacketLog two_chunks() {
  trace::PacketLog log;
  log.push_back(pkt(0.0, trace::Direction::kUplink, 400));
  for (int i = 0; i < 70; ++i) {
    log.push_back(pkt(0.1 + i * 0.01, trace::Direction::kDownlink, 1448));
  }
  log.push_back(pkt(5.0, trace::Direction::kUplink, 400));
  for (int i = 0; i < 140; ++i) {
    log.push_back(pkt(5.1 + i * 0.01, trace::Direction::kDownlink, 1448));
  }
  return log;
}

TEST(Ml16Features, EmptyLogAllZero) {
  const auto f = extract_ml16_features({});
  EXPECT_EQ(f.size(), ml16_feature_names().size());
  for (double v : f) EXPECT_EQ(v, 0.0);
}

TEST(Ml16Features, DetectsChunksFromRequestStructure) {
  const auto f = extract_ml16_features(two_chunks());
  EXPECT_EQ(f[idx("NUM_CHUNKS")], 2.0);
  EXPECT_NEAR(f[idx("CHUNK_SIZE_MIN")], 70.0 * 1448.0, 1.0);
  EXPECT_NEAR(f[idx("CHUNK_SIZE_MAX")], 140.0 * 1448.0, 1.0);
  EXPECT_NEAR(f[idx("CHUNK_IAT_MED")], 5.0, 1e-6);
}

TEST(Ml16Features, MinChunkBytesFiltersBeacons) {
  trace::PacketLog log = two_chunks();
  // A tiny exchange (beacon) on another flow.
  log.push_back(pkt(2.0, trace::Direction::kUplink, 300, 9));
  log.push_back(pkt(2.1, trace::Direction::kDownlink, 500, 9));
  std::sort(log.begin(), log.end(),
            [](const auto& a, const auto& b) { return a.ts_s < b.ts_s; });
  const auto f = extract_ml16_features(log);
  EXPECT_EQ(f[idx("NUM_CHUNKS")], 2.0);  // beacon ignored (< min_chunk_bytes)
}

TEST(Ml16Features, PerFlowChunking) {
  // Interleaved requests on two flows must not truncate each other.
  trace::PacketLog log;
  log.push_back(pkt(0.0, trace::Direction::kUplink, 400, 1));
  log.push_back(pkt(0.05, trace::Direction::kUplink, 400, 2));
  for (int i = 0; i < 50; ++i) {
    log.push_back(pkt(0.1 + i * 0.01, trace::Direction::kDownlink, 1448, 1));
    log.push_back(pkt(0.105 + i * 0.01, trace::Direction::kDownlink, 1448, 2));
  }
  std::sort(log.begin(), log.end(),
            [](const auto& a, const auto& b) { return a.ts_s < b.ts_s; });
  const auto f = extract_ml16_features(log);
  EXPECT_EQ(f[idx("NUM_CHUNKS")], 2.0);
  EXPECT_NEAR(f[idx("CHUNK_SIZE_MIN")], 50.0 * 1448.0, 1.0);
}

TEST(Ml16Features, RetransmissionRate) {
  trace::PacketLog log = two_chunks();
  // Mark some retransmissions.
  int marked = 0;
  for (auto& p : log) {
    if (p.dir == trace::Direction::kDownlink && marked < 21) {
      p.retransmission = true;
      ++marked;
    }
  }
  const auto f = extract_ml16_features(log);
  EXPECT_NEAR(f[idx("RETX_RATE")], 21.0 / 210.0, 1e-9);
  EXPECT_GT(f[idx("LOSS_RATE")], 0.0);
  EXPECT_LT(f[idx("LOSS_RATE")], f[idx("RETX_RATE")] + 1e-12);
}

TEST(Ml16Features, RttFromRequestResponseDelay) {
  trace::PacketLog log;
  log.push_back(pkt(0.0, trace::Direction::kUplink, 400));
  log.push_back(pkt(0.08, trace::Direction::kDownlink, 1448));  // 80 ms
  for (int i = 1; i < 20; ++i) {
    log.push_back(pkt(0.08 + i * 0.001, trace::Direction::kDownlink, 1448));
  }
  const auto f = extract_ml16_features(log);
  EXPECT_NEAR(f[idx("RTT_AVG_MS")], 80.0, 1e-6);
  EXPECT_EQ(f[idx("RTT_STD_MS")], 0.0);  // single sample
}

TEST(Ml16Features, VolumeAndRates) {
  const auto log = two_chunks();
  const auto f = extract_ml16_features(log);
  const double expected_dl = 210.0 * 1500.0;  // payload + headers
  EXPECT_NEAR(f[idx("TOTAL_DL_BYTES")], expected_dl, 1.0);
  EXPECT_GT(f[idx("TOTAL_UL_BYTES")], 0.0);
  EXPECT_GT(f[idx("SES_DUR")], 6.0);
  EXPECT_NEAR(f[idx("SDR_DL_KBPS")],
              expected_dl * 8.0 / 1000.0 / f[idx("SES_DUR")], 1e-6);
  EXPECT_GT(f[idx("PKTS_PER_SEC")], 0.0);
}

TEST(Ml16Features, D2uUsesPayloadNotAcks) {
  const auto log = two_chunks();
  const auto f = extract_ml16_features(log);
  // 210 * 1500 downlink bytes over 800 uplink payload bytes.
  EXPECT_NEAR(f[idx("D2U_RATIO")], 210.0 * 1500.0 / 800.0, 1.0);
}

TEST(Ml16Features, ChunkD2u) {
  const auto f = extract_ml16_features(two_chunks());
  // Chunks carry 70*1448/400 and 140*1448/400.
  EXPECT_NEAR(f[idx("CHUNK_D2U_MED")],
              (70.0 * 1448.0 / 400.0 + 140.0 * 1448.0 / 400.0) / 2.0, 1.0);
  EXPECT_NEAR(f[idx("CHUNK_D2U_MAX")], 140.0 * 1448.0 / 400.0, 1.0);
}

TEST(Ml16Features, CumulativeWindows) {
  const auto f = extract_ml16_features(two_chunks());
  // Everything happens within ~6.5 s, so all windows see all bytes.
  EXPECT_NEAR(f[idx("CUM_DL_30S")], f[idx("TOTAL_DL_BYTES")], 1.0);
  EXPECT_EQ(f[idx("CUM_DL_30S")], f[idx("CUM_DL_480S")]);
  EXPECT_GT(f[idx("CUM_UL_30S")], 0.0);
}

TEST(Ml16Features, FlowAggregates) {
  const auto f = extract_ml16_features(two_chunks());
  EXPECT_EQ(f[idx("NUM_FLOWS")], 1.0);
  EXPECT_NEAR(f[idx("FLOW_DL_MAX")], f[idx("TOTAL_DL_BYTES")], 1.0);
  EXPECT_GT(f[idx("FLOW_DUR_MED")], 6.0);
}

TEST(Ml16Features, AllFinite) {
  util::Rng rng(1);
  trace::PacketLog log;
  double t = 0.0;
  for (int i = 0; i < 3000; ++i) {
    t += rng.uniform(0.0, 0.05);
    const bool up = rng.bernoulli(0.3);
    log.push_back(pkt(t, up ? trace::Direction::kUplink
                            : trace::Direction::kDownlink,
                      up ? (rng.bernoulli(0.5) ? 0u : 400u) : 1448u,
                      static_cast<std::uint32_t>(rng.uniform_int(0, 4)),
                      rng.bernoulli(0.01)));
  }
  const auto f = extract_ml16_features(log);
  for (double v : f) EXPECT_TRUE(std::isfinite(v));
}

}  // namespace
}  // namespace droppkt::core
