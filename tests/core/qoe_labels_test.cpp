#include "core/qoe_labels.hpp"

#include <gtest/gtest.h>

#include "util/expect.hpp"

namespace droppkt::core {
namespace {

has::GroundTruth gt_with(std::vector<int> heights, double playback,
                         double stall) {
  has::GroundTruth gt;
  gt.playback_s = playback;
  if (stall > 0.0) gt.stalls.push_back({10.0, 10.0 + stall});
  gt.played_height_per_s = std::move(heights);
  for (std::size_t i = 0; i < gt.played_height_per_s.size(); ++i) {
    gt.played_level_per_s.push_back(0);
  }
  return gt;
}

TEST(RebufferingClass, PaperThresholds) {
  EXPECT_EQ(rebuffering_class(0.0), 2);       // zero
  EXPECT_EQ(rebuffering_class(0.001), 1);     // mild
  EXPECT_EQ(rebuffering_class(0.02), 1);      // boundary: mild includes 2%
  EXPECT_EQ(rebuffering_class(0.0201), 0);    // high
  EXPECT_EQ(rebuffering_class(1.5), 0);
}

TEST(RebufferingClass, RejectsNegative) {
  EXPECT_THROW(rebuffering_class(-0.1), droppkt::ContractViolation);
}

TEST(QualityClass, Svc1Thresholds) {
  const auto svc = has::svc1_profile();
  EXPECT_EQ(quality_class(144, svc), 0);
  EXPECT_EQ(quality_class(288, svc), 0);   // low <= 288p
  EXPECT_EQ(quality_class(480, svc), 1);   // medium = 480p
  EXPECT_EQ(quality_class(720, svc), 2);
  EXPECT_EQ(quality_class(1080, svc), 2);
}

TEST(QualityClass, Svc2Thresholds) {
  const auto svc = has::svc2_profile();
  EXPECT_EQ(quality_class(360, svc), 0);   // paper: 360p or lower is low
  EXPECT_EQ(quality_class(480, svc), 1);
  EXPECT_EQ(quality_class(720, svc), 2);
}

TEST(VideoQualityLabel, MajorityWins) {
  const auto svc = has::svc1_profile();
  // 3 seconds at 1080p, 2 at 144p -> majority high.
  const auto gt = gt_with({1080, 1080, 1080, 144, 144}, 5.0, 0.0);
  EXPECT_EQ(video_quality_label(gt, svc), 2);
}

TEST(VideoQualityLabel, TieSelectsLowerCategory) {
  const auto svc = has::svc1_profile();
  // 2 low + 2 high: the paper breaks ties toward the lower class.
  const auto gt = gt_with({144, 144, 1080, 1080}, 4.0, 0.0);
  EXPECT_EQ(video_quality_label(gt, svc), 0);
  // 2 medium + 2 high -> medium.
  const auto gt2 = gt_with({480, 480, 1080, 1080}, 4.0, 0.0);
  EXPECT_EQ(video_quality_label(gt2, svc), 1);
}

TEST(VideoQualityLabel, NothingPlayedIsLow) {
  const auto svc = has::svc1_profile();
  const auto gt = gt_with({}, 0.0, 0.0);
  EXPECT_EQ(video_quality_label(gt, svc), 0);
}

TEST(ComputeLabels, CombinedIsMinimum) {
  const auto svc = has::svc1_profile();
  // High quality but heavy stalls -> combined low (paper's example inverted).
  auto gt = gt_with(std::vector<int>(100, 1080), 100.0, 10.0);
  auto labels = compute_labels(gt, svc);
  EXPECT_EQ(labels.video_quality, 2);
  EXPECT_EQ(labels.rebuffering, 0);
  EXPECT_EQ(labels.combined, 0);

  // Zero re-buffering but low quality -> combined low (paper's example).
  gt = gt_with(std::vector<int>(100, 144), 100.0, 0.0);
  labels = compute_labels(gt, svc);
  EXPECT_EQ(labels.rebuffering, 2);
  EXPECT_EQ(labels.video_quality, 0);
  EXPECT_EQ(labels.combined, 0);
}

TEST(ComputeLabels, PerfectSessionIsHigh) {
  const auto svc = has::svc2_profile();
  const auto gt = gt_with(std::vector<int>(60, 1080), 60.0, 0.0);
  const auto labels = compute_labels(gt, svc);
  EXPECT_EQ(labels.combined, 2);
  EXPECT_EQ(labels.rebuffer_ratio, 0.0);
}

TEST(ComputeLabels, MildStallCapsAtMedium) {
  const auto svc = has::svc2_profile();
  // 1 s stall over 100 s playback = 1% -> mild -> combined at most medium.
  const auto gt = gt_with(std::vector<int>(100, 1080), 100.0, 1.0);
  const auto labels = compute_labels(gt, svc);
  EXPECT_EQ(labels.rebuffering, 1);
  EXPECT_EQ(labels.combined, 1);
}

TEST(QoeLabels, LabelForSelectsTarget) {
  QoeLabels labels;
  labels.rebuffering = 0;
  labels.video_quality = 1;
  labels.combined = 2;  // artificial, to check routing only
  EXPECT_EQ(labels.label_for(QoeTarget::kRebuffering), 0);
  EXPECT_EQ(labels.label_for(QoeTarget::kVideoQuality), 1);
  EXPECT_EQ(labels.label_for(QoeTarget::kCombined), 2);
}

TEST(ClassNames, ThreePerTargetWorstFirst) {
  for (auto t : {QoeTarget::kRebuffering, QoeTarget::kVideoQuality,
                 QoeTarget::kCombined}) {
    EXPECT_EQ(class_names(t).size(), 3u);
  }
  EXPECT_EQ(class_names(QoeTarget::kRebuffering)[0], "high");
  EXPECT_EQ(class_names(QoeTarget::kCombined)[0], "low");
  EXPECT_EQ(class_names(QoeTarget::kCombined)[2], "high");
}

TEST(ToString, TargetsNamed) {
  EXPECT_EQ(to_string(QoeTarget::kRebuffering), "re-buffering");
  EXPECT_EQ(to_string(QoeTarget::kVideoQuality), "video quality");
  EXPECT_EQ(to_string(QoeTarget::kCombined), "combined QoE");
}

}  // namespace
}  // namespace droppkt::core
