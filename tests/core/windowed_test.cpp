#include "core/windowed.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/expect.hpp"

namespace droppkt::core {
namespace {

LabeledDataset small_dataset(std::size_t n = 20, std::uint64_t seed = 1) {
  DatasetConfig cfg;
  cfg.num_sessions = n;
  cfg.seed = seed;
  cfg.trace_pool_size = 30;
  cfg.catalog_size = 15;
  return build_dataset(has::svc2_profile(), cfg);
}

trace::PacketRecord pkt(double ts, trace::Direction dir, std::uint32_t size,
                        bool retx = false) {
  return {.ts_s = ts, .dir = dir, .size_bytes = size,
          .payload_bytes = size > 52 ? size - 52 : 0, .flow_id = 1,
          .retransmission = retx, .is_syn = false, .is_fin = false};
}

TEST(WindowFeatures, EmptySliceMostlyZero) {
  const auto f = extract_window_features({}, 0.0, 10.0);
  ASSERT_EQ(f.size(), window_feature_names().size());
  EXPECT_EQ(f[0], 0.0);                       // DL bytes
  EXPECT_EQ(f[4], 0.0);                       // throughput
  EXPECT_EQ(f[8], 10.0);                      // max gap = whole window
}

TEST(WindowFeatures, CountsAndRates) {
  std::vector<trace::PacketRecord> slice{
      pkt(0.5, trace::Direction::kUplink, 452),
      pkt(1.0, trace::Direction::kDownlink, 1500),
      pkt(1.5, trace::Direction::kDownlink, 1500, true),
  };
  const auto f = extract_window_features(slice, 0.0, 10.0);
  EXPECT_EQ(f[0], 3000.0);                     // DL bytes
  EXPECT_EQ(f[1], 452.0);                      // UL bytes
  EXPECT_EQ(f[2], 2.0);                        // DL pkts
  EXPECT_EQ(f[3], 1.0);                        // UL pkts
  EXPECT_NEAR(f[4], 3000.0 * 8 / 1000.0 / 10, 1e-9);
  EXPECT_EQ(f[5], 0.5);                        // retx rate
  EXPECT_EQ(f[9], 1.0);                        // requests
  EXPECT_NEAR(f[8], 8.5, 1e-9);                // gap from 1.5 to window end
}

TEST(WindowFeatures, ActiveFraction) {
  std::vector<trace::PacketRecord> slice{
      pkt(0.1, trace::Direction::kDownlink, 1000),
      pkt(3.1, trace::Direction::kDownlink, 1000),
  };
  const auto f = extract_window_features(slice, 0.0, 10.0);
  EXPECT_NEAR(f[6], 0.2, 1e-9);  // 2 of 10 seconds active
}

TEST(WindowsForSession, CoversWholeSession) {
  const auto ds = small_dataset(5);
  WindowedConfig cfg;
  for (const auto& s : ds) {
    const auto windows = windows_for_session(s, cfg);
    const auto expected = static_cast<std::size_t>(
        std::ceil(s.record.ground_truth.session_end_s / cfg.window_s));
    EXPECT_EQ(windows.features.size(), expected);
    EXPECT_EQ(windows.stalled.size(), expected);
  }
}

TEST(WindowsForSession, StallLabelsMatchGroundTruth) {
  const auto ds = small_dataset(30, 2);
  WindowedConfig cfg;
  for (const auto& s : ds) {
    const auto windows = windows_for_session(s, cfg);
    std::size_t stalled = 0;
    for (int w : windows.stalled) stalled += w;
    if (s.record.ground_truth.stall_time_s() == 0.0) {
      EXPECT_EQ(stalled, 0u);
    } else if (s.record.ground_truth.stall_time_s() > 2.0 * cfg.window_s) {
      EXPECT_GT(stalled, 0u);
    }
  }
}

TEST(WindowsForSession, Deterministic) {
  const auto ds = small_dataset(3, 3);
  const auto a = windows_for_session(ds[0]);
  const auto b = windows_for_session(ds[0]);
  ASSERT_EQ(a.features.size(), b.features.size());
  for (std::size_t w = 0; w < a.features.size(); ++w) {
    EXPECT_EQ(a.features[w], b.features[w]);
    EXPECT_EQ(a.stalled[w], b.stalled[w]);
  }
}

TEST(MakeWindowDataset, PoolsAllWindows) {
  const auto ds = small_dataset(6, 4);
  const auto data = make_window_dataset(ds);
  std::size_t expected = 0;
  for (const auto& s : ds) {
    expected += windows_for_session(s).features.size();
  }
  EXPECT_EQ(data.size(), expected);
  EXPECT_EQ(data.num_classes(), 2);
}

TEST(SessionFromWindows, Categorization) {
  const std::vector<int> none{0, 0, 0, 0, 0};
  EXPECT_EQ(session_rebuffering_from_windows(none), 2);  // zero
  const std::vector<int> one_of_twenty{1, 0, 0, 0, 0, 0, 0, 0, 0, 0,
                                       0, 0, 0, 0, 0, 0, 0, 0, 0, 0};
  EXPECT_EQ(session_rebuffering_from_windows(one_of_twenty), 1);  // mild
  const std::vector<int> heavy{1, 1, 1, 0, 0};
  EXPECT_EQ(session_rebuffering_from_windows(heavy), 0);  // high
  EXPECT_EQ(session_rebuffering_from_windows({}), 2);
}

TEST(WindowedConfig, Validation) {
  const auto ds = small_dataset(1, 5);
  WindowedConfig bad;
  bad.window_s = 0.0;
  EXPECT_THROW(windows_for_session(ds[0], bad), droppkt::ContractViolation);
  EXPECT_THROW(extract_window_features({}, 0.0, 0.0),
               droppkt::ContractViolation);
}

}  // namespace
}  // namespace droppkt::core
