#include "core/session_id.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <span>
#include <vector>

#include "core/dataset_builder.hpp"
#include "util/expect.hpp"

namespace droppkt::core {
namespace {

trace::TlsTransaction txn(double start, const std::string& sni) {
  return {.start_s = start, .end_s = start + 10.0, .ul_bytes = 100.0,
          .dl_bytes = 1000.0, .sni = sni, .http_count = 1};
}

TEST(SessionId, EmptyLog) {
  EXPECT_TRUE(detect_session_starts({}).empty());
}

TEST(SessionId, FirstTransactionAlwaysStarts) {
  const trace::TlsLog log{txn(0.0, "a")};
  const auto starts = detect_session_starts(log);
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_TRUE(starts[0]);
}

TEST(SessionId, QuietContinuationNotFlagged) {
  trace::TlsLog log;
  // Sparse transactions to familiar servers: one session.
  for (int i = 0; i < 10; ++i) log.push_back(txn(i * 10.0, "cdn.example"));
  const auto starts = detect_session_starts(log);
  for (std::size_t i = 1; i < starts.size(); ++i) EXPECT_FALSE(starts[i]);
}

TEST(SessionId, BurstOfFreshServersFlagged) {
  trace::TlsLog log;
  // Session 1 on servers a/b.
  log.push_back(txn(0.0, "a"));
  log.push_back(txn(0.5, "b"));
  log.push_back(txn(20.0, "a"));
  // Session 2 starts at t=60 with a burst to fresh servers c/d/e.
  log.push_back(txn(60.0, "c"));
  log.push_back(txn(60.4, "d"));
  log.push_back(txn(60.9, "e"));
  log.push_back(txn(61.5, "c"));
  const auto starts = detect_session_starts(log);
  EXPECT_TRUE(starts[3]);
  // Burst members are within the refractory window.
  EXPECT_FALSE(starts[4]);
  EXPECT_FALSE(starts[5]);
}

TEST(SessionId, BurstToFamiliarServersNotFlagged) {
  trace::TlsLog log;
  log.push_back(txn(0.0, "a"));
  log.push_back(txn(0.5, "b"));
  log.push_back(txn(1.0, "c"));
  // Mid-session burst to the SAME servers (e.g. parallel range requests).
  log.push_back(txn(30.0, "a"));
  log.push_back(txn(30.2, "b"));
  log.push_back(txn(30.4, "c"));
  log.push_back(txn(30.6, "a"));
  const auto starts = detect_session_starts(log);
  for (std::size_t i = 1; i < starts.size(); ++i) EXPECT_FALSE(starts[i]);
}

TEST(SessionId, SmallBurstBelowNminNotFlagged) {
  trace::TlsLog log;
  log.push_back(txn(0.0, "a"));
  // Only two fresh transactions follow within W: N == 2 is not > Nmin.
  log.push_back(txn(50.0, "x"));
  log.push_back(txn(50.5, "y"));
  log.push_back(txn(51.0, "z"));
  const auto starts = detect_session_starts(log);
  // Transaction 1 has succeeding {y, z}: N=2, not > 2.
  EXPECT_FALSE(starts[1]);
}

TEST(SessionId, ParametersAreTunable) {
  trace::TlsLog log;
  log.push_back(txn(0.0, "a"));
  log.push_back(txn(50.0, "x"));
  log.push_back(txn(50.5, "y"));
  log.push_back(txn(51.0, "z"));
  SessionIdParams loose;
  loose.n_min = 1;  // now N=2 > 1 suffices
  const auto starts = detect_session_starts(log, loose);
  EXPECT_TRUE(starts[1]);
}

TEST(SessionId, RequiresSortedInput) {
  trace::TlsLog log{txn(5.0, "a"), txn(1.0, "b")};
  EXPECT_THROW(detect_session_starts(log), droppkt::ContractViolation);
}

TEST(SessionId, ValidatesParams) {
  SessionIdParams bad;
  bad.window_s = 0.0;
  EXPECT_THROW(detect_session_starts({}, bad), droppkt::ContractViolation);
  bad = {};
  bad.delta_min = 1.5;
  EXPECT_THROW(detect_session_starts({}, bad), droppkt::ContractViolation);
}

TEST(SplitSessions, SplitsAtDetectedBoundaries) {
  trace::TlsLog log;
  log.push_back(txn(0.0, "a"));
  log.push_back(txn(10.0, "a"));
  // New-session burst: more than Nmin=2 succeeding fresh transactions
  // within W=3 s of the first one.
  log.push_back(txn(60.0, "c"));
  log.push_back(txn(60.3, "d"));
  log.push_back(txn(60.6, "e"));
  log.push_back(txn(61.2, "f"));
  log.push_back(txn(70.0, "c"));
  const auto sessions = split_sessions(log);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].size(), 2u);
  EXPECT_EQ(sessions[1].size(), 5u);
}

// The headline reproduction: back-to-back Svc1 sessions are recovered with
// high accuracy (paper Table 5: 89% of new sessions, 98% of existing).
TEST(SessionId, BackToBackStreamsRecovered) {
  int tp = 0, fn = 0, fp = 0, tn = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const auto stream = build_back_to_back(has::svc1_profile(), 6, seed);
    const auto pred = detect_session_starts(stream.merged);
    for (std::size_t i = 0; i < pred.size(); ++i) {
      if (stream.truth_new[i] && pred[i]) ++tp;
      else if (stream.truth_new[i]) ++fn;
      else if (pred[i]) ++fp;
      else ++tn;
    }
  }
  const double new_recall = static_cast<double>(tp) / (tp + fn);
  const double existing_acc = static_cast<double>(tn) / (tn + fp);
  EXPECT_GT(new_recall, 0.6);
  EXPECT_GT(existing_acc, 0.95);
}

TEST(SessionId, TimeoutHeuristicWouldFail) {
  // The paper's motivation: back-to-back sessions overlap, so a gap-based
  // rule sees no boundary. Verify overlap actually occurs in our streams.
  const auto stream = build_back_to_back(has::svc1_profile(), 4, 5);
  bool any_overlap_at_boundary = false;
  for (std::size_t i = 0; i < stream.merged.size(); ++i) {
    if (!stream.truth_new[i] || i == 0) continue;
    // Does any earlier transaction still extend past this session start?
    for (std::size_t j = 0; j < i; ++j) {
      if (stream.merged[j].end_s > stream.merged[i].start_s) {
        any_overlap_at_boundary = true;
      }
    }
  }
  EXPECT_TRUE(any_overlap_at_boundary);
}


// ---------------------------------------------------------------------------
// IncrementalBoundaryScan: the streaming form must make byte-identical
// split decisions to re-running the batch heuristic on every arrival and
// cutting at the first detected start — over adversarial random windows.
// ---------------------------------------------------------------------------

/// Reference decision: full rescan of the window, cut at the first start.
std::size_t rescan_first_start(std::span<const TlsRecord> window,
                               const SessionIdParams& params,
                               SessionStartScratch& scratch) {
  detect_session_starts_into(window, params, scratch);
  for (std::size_t i = 1; i < window.size(); ++i) {
    if (scratch.is_start[i] != 0) return i;
  }
  return 0;
}

void run_incremental_vs_rescan(const SessionIdParams& params,
                               std::uint32_t seed, int records) {
  std::mt19937 rng(seed);
  std::uniform_real_distribution<double> chunk_gap(0.2, 2.5);
  std::uniform_real_distribution<double> burst_gap(0.0, 0.4);
  std::uniform_int_distribution<std::uint32_t> familiar_sni(0, 7);
  std::uniform_int_distribution<int> burst_len(2, 6);
  std::uniform_int_distribution<int> coin(0, 99);

  std::vector<TlsRecord> window;
  IncrementalBoundaryScan scan;
  SessionStartScratch scratch;
  double now = 0.0;
  std::uint32_t next_fresh_sni = 100;  // never overlaps the familiar pool
  std::size_t cuts = 0;
  int burst_left = 0;
  bool burst_fresh = false;

  for (int n = 0; n < records; ++n) {
    if (burst_left == 0 && coin(rng) < 8) {
      // Occasionally open a burst; fresh-server bursts are real session
      // starts, familiar-server bursts are the heuristic's hard negative.
      burst_left = burst_len(rng);
      burst_fresh = coin(rng) < 70;
    }
    double gap = chunk_gap(rng);
    std::uint32_t sni = familiar_sni(rng);
    if (burst_left > 0) {
      --burst_left;
      gap = burst_gap(rng);
      if (burst_fresh) sni = next_fresh_sni++;
    }
    now += gap;
    window.push_back(TlsRecord{.start_s = now,
                               .end_s = now + 5.0,
                               .ul_bytes = 100.0,
                               .dl_bytes = 1000.0,
                               .sni_ref = sni,
                               .http_count = 1});
    const std::size_t expect = rescan_first_start(window, params, scratch);
    const std::size_t got = scan.on_append(window, params);
    ASSERT_EQ(got, expect)
        << "diverged at record " << n << " (window " << window.size()
        << ", seed " << seed << ")";
    if (got != 0) {
      ++cuts;
      window.erase(window.begin(),
                   window.begin() + static_cast<std::ptrdiff_t>(got));
      scan.rebuild(window, params);
    }
  }
  // The generator must actually have produced splits, or the test is
  // vacuous.
  EXPECT_GT(cuts, 0u) << "seed " << seed;
}

TEST(IncrementalBoundaryScan, MatchesRescanOnRandomWindows) {
  for (const std::uint32_t seed : {1u, 2u, 3u, 4u}) {
    run_incremental_vs_rescan(SessionIdParams{}, seed, 4000);
  }
}

TEST(IncrementalBoundaryScan, MatchesRescanUnderTunedParams) {
  SessionIdParams params;
  params.window_s = 5.0;
  params.n_min = 3;
  params.delta_min = 0.6;
  for (const std::uint32_t seed : {10u, 11u}) {
    run_incremental_vs_rescan(params, seed, 4000);
  }
}

TEST(IncrementalBoundaryScan, ResetForgetsWindowState) {
  // Feed a window, reset, then replay the same records: decisions must
  // match a fresh scan (no counters leak across the reset).
  SessionIdParams params;
  std::mt19937 rng(77);
  std::vector<TlsRecord> window;
  IncrementalBoundaryScan scan;
  SessionStartScratch scratch;
  double now = 0.0;
  for (int i = 0; i < 50; ++i) {
    now += 1.0;
    window.push_back(TlsRecord{.start_s = now, .end_s = now + 2.0,
                               .ul_bytes = 1.0, .dl_bytes = 1.0,
                               .sni_ref = static_cast<std::uint32_t>(i % 3),
                               .http_count = 1});
    scan.on_append(window, params);
  }
  scan.reset();
  window.clear();
  for (int i = 0; i < 50; ++i) {
    now += 1.0;
    window.push_back(TlsRecord{.start_s = now, .end_s = now + 2.0,
                               .ul_bytes = 1.0, .dl_bytes = 1.0,
                               .sni_ref = static_cast<std::uint32_t>(i % 3),
                               .http_count = 1});
    const std::size_t expect = rescan_first_start(window, params, scratch);
    ASSERT_EQ(scan.on_append(window, params), expect) << "record " << i;
  }
}

}  // namespace
}  // namespace droppkt::core
