#include "core/session_id.hpp"

#include <gtest/gtest.h>

#include "core/dataset_builder.hpp"
#include "util/expect.hpp"

namespace droppkt::core {
namespace {

trace::TlsTransaction txn(double start, const std::string& sni) {
  return {.start_s = start, .end_s = start + 10.0, .ul_bytes = 100.0,
          .dl_bytes = 1000.0, .sni = sni, .http_count = 1};
}

TEST(SessionId, EmptyLog) {
  EXPECT_TRUE(detect_session_starts({}).empty());
}

TEST(SessionId, FirstTransactionAlwaysStarts) {
  const trace::TlsLog log{txn(0.0, "a")};
  const auto starts = detect_session_starts(log);
  ASSERT_EQ(starts.size(), 1u);
  EXPECT_TRUE(starts[0]);
}

TEST(SessionId, QuietContinuationNotFlagged) {
  trace::TlsLog log;
  // Sparse transactions to familiar servers: one session.
  for (int i = 0; i < 10; ++i) log.push_back(txn(i * 10.0, "cdn.example"));
  const auto starts = detect_session_starts(log);
  for (std::size_t i = 1; i < starts.size(); ++i) EXPECT_FALSE(starts[i]);
}

TEST(SessionId, BurstOfFreshServersFlagged) {
  trace::TlsLog log;
  // Session 1 on servers a/b.
  log.push_back(txn(0.0, "a"));
  log.push_back(txn(0.5, "b"));
  log.push_back(txn(20.0, "a"));
  // Session 2 starts at t=60 with a burst to fresh servers c/d/e.
  log.push_back(txn(60.0, "c"));
  log.push_back(txn(60.4, "d"));
  log.push_back(txn(60.9, "e"));
  log.push_back(txn(61.5, "c"));
  const auto starts = detect_session_starts(log);
  EXPECT_TRUE(starts[3]);
  // Burst members are within the refractory window.
  EXPECT_FALSE(starts[4]);
  EXPECT_FALSE(starts[5]);
}

TEST(SessionId, BurstToFamiliarServersNotFlagged) {
  trace::TlsLog log;
  log.push_back(txn(0.0, "a"));
  log.push_back(txn(0.5, "b"));
  log.push_back(txn(1.0, "c"));
  // Mid-session burst to the SAME servers (e.g. parallel range requests).
  log.push_back(txn(30.0, "a"));
  log.push_back(txn(30.2, "b"));
  log.push_back(txn(30.4, "c"));
  log.push_back(txn(30.6, "a"));
  const auto starts = detect_session_starts(log);
  for (std::size_t i = 1; i < starts.size(); ++i) EXPECT_FALSE(starts[i]);
}

TEST(SessionId, SmallBurstBelowNminNotFlagged) {
  trace::TlsLog log;
  log.push_back(txn(0.0, "a"));
  // Only two fresh transactions follow within W: N == 2 is not > Nmin.
  log.push_back(txn(50.0, "x"));
  log.push_back(txn(50.5, "y"));
  log.push_back(txn(51.0, "z"));
  const auto starts = detect_session_starts(log);
  // Transaction 1 has succeeding {y, z}: N=2, not > 2.
  EXPECT_FALSE(starts[1]);
}

TEST(SessionId, ParametersAreTunable) {
  trace::TlsLog log;
  log.push_back(txn(0.0, "a"));
  log.push_back(txn(50.0, "x"));
  log.push_back(txn(50.5, "y"));
  log.push_back(txn(51.0, "z"));
  SessionIdParams loose;
  loose.n_min = 1;  // now N=2 > 1 suffices
  const auto starts = detect_session_starts(log, loose);
  EXPECT_TRUE(starts[1]);
}

TEST(SessionId, RequiresSortedInput) {
  trace::TlsLog log{txn(5.0, "a"), txn(1.0, "b")};
  EXPECT_THROW(detect_session_starts(log), droppkt::ContractViolation);
}

TEST(SessionId, ValidatesParams) {
  SessionIdParams bad;
  bad.window_s = 0.0;
  EXPECT_THROW(detect_session_starts({}, bad), droppkt::ContractViolation);
  bad = {};
  bad.delta_min = 1.5;
  EXPECT_THROW(detect_session_starts({}, bad), droppkt::ContractViolation);
}

TEST(SplitSessions, SplitsAtDetectedBoundaries) {
  trace::TlsLog log;
  log.push_back(txn(0.0, "a"));
  log.push_back(txn(10.0, "a"));
  // New-session burst: more than Nmin=2 succeeding fresh transactions
  // within W=3 s of the first one.
  log.push_back(txn(60.0, "c"));
  log.push_back(txn(60.3, "d"));
  log.push_back(txn(60.6, "e"));
  log.push_back(txn(61.2, "f"));
  log.push_back(txn(70.0, "c"));
  const auto sessions = split_sessions(log);
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_EQ(sessions[0].size(), 2u);
  EXPECT_EQ(sessions[1].size(), 5u);
}

// The headline reproduction: back-to-back Svc1 sessions are recovered with
// high accuracy (paper Table 5: 89% of new sessions, 98% of existing).
TEST(SessionId, BackToBackStreamsRecovered) {
  int tp = 0, fn = 0, fp = 0, tn = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const auto stream = build_back_to_back(has::svc1_profile(), 6, seed);
    const auto pred = detect_session_starts(stream.merged);
    for (std::size_t i = 0; i < pred.size(); ++i) {
      if (stream.truth_new[i] && pred[i]) ++tp;
      else if (stream.truth_new[i]) ++fn;
      else if (pred[i]) ++fp;
      else ++tn;
    }
  }
  const double new_recall = static_cast<double>(tp) / (tp + fn);
  const double existing_acc = static_cast<double>(tn) / (tn + fp);
  EXPECT_GT(new_recall, 0.6);
  EXPECT_GT(existing_acc, 0.95);
}

TEST(SessionId, TimeoutHeuristicWouldFail) {
  // The paper's motivation: back-to-back sessions overlap, so a gap-based
  // rule sees no boundary. Verify overlap actually occurs in our streams.
  const auto stream = build_back_to_back(has::svc1_profile(), 4, 5);
  bool any_overlap_at_boundary = false;
  for (std::size_t i = 0; i < stream.merged.size(); ++i) {
    if (!stream.truth_new[i] || i == 0) continue;
    // Does any earlier transaction still extend past this session start?
    for (std::size_t j = 0; j < i; ++j) {
      if (stream.merged[j].end_s > stream.merged[i].start_s) {
        any_overlap_at_boundary = true;
      }
    }
  }
  EXPECT_TRUE(any_overlap_at_boundary);
}

}  // namespace
}  // namespace droppkt::core
