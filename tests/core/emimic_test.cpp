#include "core/emimic.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/dataset_builder.hpp"
#include "util/expect.hpp"

namespace droppkt::core {
namespace {

has::HttpTransaction media(double req, double end, double bytes) {
  return {.request_s = req, .response_start_s = req + 0.02,
          .response_end_s = end, .ul_bytes = 500.0, .dl_bytes = bytes,
          .kind = has::HttpKind::kVideoSegment, .quality = 0, .host = "h",
          .rtt_s = 0.02, .connection_id = 0};
}

/// n segments of `bytes`, arriving every `period_s`, each downloading
/// `dl_time` seconds.
has::HttpLog periodic_segments(std::size_t n, double period_s, double bytes,
                               double dl_time = 0.5) {
  has::HttpLog log;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * period_s;
    log.push_back(media(t, t + dl_time, bytes));
  }
  return log;
}

TEST(Emimic, EmptyLogSafe) {
  const auto est = emimic_estimate({}, 5.0);
  EXPECT_EQ(est.segments_detected, 0u);
  EXPECT_EQ(est.rebuffer_ratio, 0.0);
}

TEST(Emimic, DetectsSegmentsAboveThreshold) {
  auto log = periodic_segments(10, 5.0, 500e3);
  // A beacon-sized exchange must not count.
  log.push_back(media(51.0, 51.1, 800.0));
  std::sort(log.begin(), log.end(), [](const auto& a, const auto& b) {
    return a.request_s < b.request_s;
  });
  const auto est = emimic_estimate(log, 5.0);
  EXPECT_EQ(est.segments_detected, 10u);
}

TEST(Emimic, MergesRangeRequests) {
  // One 1.5 MB segment fetched as three back-to-back 500 KB ranges.
  has::HttpLog log;
  log.push_back(media(0.0, 0.4, 500e3));
  log.push_back(media(0.45, 0.9, 500e3));
  log.push_back(media(0.95, 1.4, 500e3));
  // A separate segment after an idle gap.
  log.push_back(media(5.0, 5.4, 500e3));
  const auto est = emimic_estimate(log, 5.0);
  EXPECT_EQ(est.segments_detected, 2u);
}

TEST(Emimic, SmoothSessionHasNoRebuffering) {
  // Segments arrive every 5 s and carry 5 s of media: exactly real time,
  // no deficit after startup.
  const auto est = emimic_estimate(periodic_segments(40, 5.0, 1e6), 5.0);
  EXPECT_NEAR(est.rebuffer_ratio, 0.0, 1e-9);
  EXPECT_GT(est.startup_delay_s, 0.0);
}

TEST(Emimic, SlowArrivalsProduceStalls) {
  // Segments carry 5 s of media but arrive every 8 s: a 3 s deficit per
  // segment after startup.
  const auto est = emimic_estimate(periodic_segments(20, 8.0, 1e6), 5.0);
  EXPECT_GT(est.rebuffer_ratio, 0.2);
}

TEST(Emimic, FasterThanRealTimeNoStalls) {
  const auto est = emimic_estimate(periodic_segments(20, 2.0, 1e6), 5.0);
  EXPECT_NEAR(est.rebuffer_ratio, 0.0, 1e-9);
}

TEST(Emimic, BitrateEstimate) {
  // 1 MB per 5 s segment -> 1600 kbps.
  const auto est = emimic_estimate(periodic_segments(20, 5.0, 1e6), 5.0);
  EXPECT_NEAR(est.avg_bitrate_kbps, 1600.0, 1.0);
}

TEST(Emimic, LabelsFromEstimate) {
  const auto svc = has::svc1_profile();
  EmimicEstimate est;
  est.rebuffer_ratio = 0.0;
  est.avg_bitrate_kbps = 2200.0;  // nearest rung: 720p
  auto labels = est.to_labels(svc);
  EXPECT_EQ(labels.rebuffering, 2);
  EXPECT_EQ(labels.video_quality, 2);
  EXPECT_EQ(labels.combined, 2);

  est.avg_bitrate_kbps = 130.0;  // 144p
  est.rebuffer_ratio = 0.1;
  labels = est.to_labels(svc);
  EXPECT_EQ(labels.video_quality, 0);
  EXPECT_EQ(labels.rebuffering, 0);
  EXPECT_EQ(labels.combined, 0);
}

TEST(Emimic, ValidatesInputs) {
  EXPECT_THROW(emimic_estimate({}, 0.0), droppkt::ContractViolation);
  EmimicConfig bad;
  bad.startup_segments = 0.0;
  EXPECT_THROW(emimic_estimate({}, 5.0, bad), droppkt::ContractViolation);
  has::HttpLog unsorted{media(5.0, 5.5, 1e6), media(1.0, 1.5, 1e6)};
  EXPECT_THROW(emimic_estimate(unsorted, 5.0), droppkt::ContractViolation);
}

TEST(Emimic, BeatsChanceOnSimulatedSessions) {
  // End-to-end: analytic reconstruction against ground truth on the
  // muxed-audio service (Svc3), whose traffic best fits eMIMIC's
  // assumptions.
  DatasetConfig cfg;
  cfg.num_sessions = 200;
  cfg.seed = 3;
  const auto svc = has::svc3_profile();
  const auto ds = build_dataset(svc, cfg);
  std::size_t correct = 0;
  for (const auto& s : ds) {
    const auto est = emimic_estimate(s.record.http, svc.segment_duration_s);
    correct += est.to_labels(svc).combined == s.labels.combined;
  }
  EXPECT_GT(static_cast<double>(correct) / ds.size(), 0.45);
}

}  // namespace
}  // namespace droppkt::core
