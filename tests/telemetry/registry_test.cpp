#include "telemetry/registry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "util/expect.hpp"

namespace droppkt::telemetry {
namespace {

TEST(TelemetryCounter, IncAddStore) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(9);
  EXPECT_EQ(c.value(), 10u);
  // store() publishes an absolute total (block-drain idiom).
  c.store(4);
  EXPECT_EQ(c.value(), 4u);
}

TEST(TelemetryGauge, LastValueWins) {
  Gauge g;
  g.set(7);
  g.set(3);
  EXPECT_EQ(g.value(), 3u);
}

TEST(TelemetryHistogram, Log2Buckets) {
  Histogram h;
  h.record(0);
  h.record(1);  // both < 2 -> bucket 0
  h.record(2);
  h.record(3);  // bucket 1
  h.record(4);  // bucket 2
  h.record(std::uint64_t{1} << 20);  // bucket 20
  const auto counts = h.counts();
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[20], 1u);
  Histogram::Counts merged{};
  h.add_to(merged);
  h.add_to(merged);
  EXPECT_EQ(merged[1], 4u);
}

TEST(TelemetryHistogram, QuantileGeometricMidpoint) {
  Histogram h;
  for (int i = 0; i < 3; ++i) h.record(5);  // bucket 2: [4, 8)
  const auto counts = h.counts();
  const double mid = std::sqrt(2.0) * 4.0;
  EXPECT_NEAR(histogram_quantile(counts, 0.0), mid, 1e-9);
  EXPECT_NEAR(histogram_quantile(counts, 0.5), mid, 1e-9);
  EXPECT_NEAR(histogram_quantile(counts, 1.0), mid, 1e-9);
}

TEST(TelemetryHistogram, QuantileSpreadAndEdges) {
  Histogram h;
  h.record(1);    // bucket 0
  h.record(100);  // bucket 6: [64, 128)
  const auto counts = h.counts();
  EXPECT_LT(histogram_quantile(counts, 0.0), 2.0);
  EXPECT_GT(histogram_quantile(counts, 1.0), 64.0);
  EXPECT_EQ(histogram_quantile(Histogram::Counts{}, 0.5), 0.0);
  EXPECT_THROW(histogram_quantile(counts, -0.1), ContractViolation);
  EXPECT_THROW(histogram_quantile(counts, 1.1), ContractViolation);
}

TEST(TelemetryRegistry, DenseIdsInRegistrationOrder) {
  MetricRegistry reg;
  Counter& c = reg.counter("a.count", "events");
  Gauge& g = reg.gauge("b.level");
  Histogram& h = reg.histogram("c.latency", "ns");
  (void)h;
  ASSERT_EQ(reg.size(), 3u);
  const auto& dir = reg.directory();
  EXPECT_EQ(dir[0].name, "a.count");
  EXPECT_EQ(dir[0].id, 0u);
  EXPECT_EQ(dir[0].kind, MetricKind::kCounter);
  EXPECT_EQ(dir[0].unit, "events");
  EXPECT_EQ(dir[1].id, 1u);
  EXPECT_EQ(dir[1].kind, MetricKind::kGauge);
  EXPECT_EQ(dir[2].kind, MetricKind::kHistogram);

  c.add(5);
  g.set(9);
  EXPECT_EQ(reg.value("a.count"), 5u);
  EXPECT_EQ(reg.scalar_value(1), 9u);
  EXPECT_EQ(reg.scalar_value(2), 0u);  // histograms have no scalar
  EXPECT_NE(reg.histogram_at(2), nullptr);
  EXPECT_EQ(reg.histogram_at(0), nullptr);
  ASSERT_NE(reg.find("b.level"), nullptr);
  EXPECT_EQ(reg.find("b.level")->id, 1u);
  EXPECT_EQ(reg.find("missing"), nullptr);
  EXPECT_THROW(reg.value("missing"), ContractViolation);
}

TEST(TelemetryRegistry, DuplicateNamesThrowAcrossKinds) {
  MetricRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.counter("x"), ContractViolation);
  EXPECT_THROW(reg.gauge("x"), ContractViolation);
  EXPECT_THROW(reg.histogram("x"), ContractViolation);
}

TEST(TelemetryRegistry, InstrumentReferencesStayStableAsDirectoryGrows) {
  MetricRegistry reg;
  Counter& first = reg.counter("first");
  // Deque-backed storage: growing the directory must not move "first".
  char name[16];
  for (int i = 0; i < 200; ++i) {
    std::snprintf(name, sizeof(name), "c%d", i);
    reg.counter(name);
    std::snprintf(name, sizeof(name), "g%d", i);
    reg.gauge(name);
    std::snprintf(name, sizeof(name), "h%d", i);
    reg.histogram(name);
  }
  first.add(3);
  EXPECT_EQ(reg.value("first"), 3u);
}

TEST(TelemetryRegistry, SnapshotScalars) {
  MetricRegistry reg;
  reg.counter("c").add(11);
  reg.histogram("h").record(1);
  reg.gauge("g").set(22);
  std::vector<std::uint64_t> out;
  reg.snapshot_scalars(out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 11u);
  EXPECT_EQ(out[1], 0u);  // histogram slot
  EXPECT_EQ(out[2], 22u);
}

}  // namespace
}  // namespace droppkt::telemetry
