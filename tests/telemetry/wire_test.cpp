#include "telemetry/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "telemetry/clock.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/sampler.hpp"
#include "util/expect.hpp"

namespace droppkt::telemetry {
namespace {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const std::size_t old = out.size();
  out.resize(old + sizeof v);
  std::memcpy(out.data() + old, &v, sizeof v);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const std::size_t old = out.size();
  out.resize(old + sizeof v);
  std::memcpy(out.data() + old, &v, sizeof v);
}

TmInterval sample_interval() {
  TmInterval iv;
  iv.seq = 3;
  iv.t0_ns = 1'000'000'000;
  iv.t1_ns = 6'000'000'000;
  iv.scalars = {{0, 42}, {2, 7}};
  TmHistogramDelta hd;
  hd.id = 1;
  hd.deltas[0] = 2;
  hd.deltas[17] = 5;
  iv.hist_deltas.push_back(hd);
  TmLocation loc;
  loc.name = "cell-3";
  loc.degraded = true;
  loc.rate_low = 0.31;
  loc.rate_high = 0.78;
  loc.effective_sessions = 12.5;
  loc.class_counts = {4, 2, 1};
  iv.locations.push_back(loc);
  return iv;
}

std::vector<TmFrame> sample_frames() {
  TmFrame dir;
  dir.kind = TmFrame::Kind::kDirectory;
  dir.directory = {{0, MetricKind::kCounter, "engine.shard0.records", ""},
                   {1, MetricKind::kHistogram, "engine.shard0.latency", "ns"},
                   {2, MetricKind::kGauge, "engine.shard0.queue_depth", ""}};
  TmFrame iv;
  iv.kind = TmFrame::Kind::kInterval;
  iv.interval = sample_interval();
  return {dir, iv};
}

TEST(TelemetryWire, EncodeDecodeRoundTrip) {
  const auto frames = sample_frames();
  const auto bytes = tm_encode_frames(frames);
  const auto back = tm_decode_stream(bytes);
  EXPECT_EQ(back, frames);
}

TEST(TelemetryWire, DirectoryOfRegistry) {
  MetricRegistry reg;
  reg.counter("c", "events");
  reg.histogram("h", "ns");
  const auto dir = tm_directory_of(reg);
  ASSERT_EQ(dir.size(), 2u);
  EXPECT_EQ(dir[0].id, 0u);
  EXPECT_EQ(dir[0].name, "c");
  EXPECT_EQ(dir[0].unit, "events");
  EXPECT_EQ(dir[1].kind, MetricKind::kHistogram);
}

TEST(TelemetryWire, CompactIntervalElidesZeros) {
  MetricRegistry reg;
  Counter& busy = reg.counter("busy");
  reg.counter("idle");  // never incremented
  Gauge& level = reg.gauge("level");
  Histogram& h = reg.histogram("lat", "ns");
  reg.histogram("quiet_hist", "ns");  // never recorded
  ManualClock clock;
  IntervalSampler sampler(reg, clock.fn());

  busy.add(9);
  level.set(4);
  h.record(100);
  clock.advance(1'000'000'000);
  IntervalSample s;
  sampler.sample(s);

  std::vector<std::uint8_t> bytes;
  tm_write_header(bytes);
  tm_write_interval(bytes, s, {});
  const auto frames = tm_decode_stream(bytes);
  ASSERT_EQ(frames.size(), 1u);
  const TmInterval& iv = frames[0].interval;
  // Only the two non-zero scalars and the one active histogram made it
  // onto the wire; absent ids read back as 0 via scalar().
  EXPECT_EQ(iv.scalars.size(), 2u);
  EXPECT_EQ(iv.scalar(reg.find("busy")->id), 9u);
  EXPECT_EQ(iv.scalar(reg.find("idle")->id), 0u);
  EXPECT_EQ(iv.scalar(reg.find("level")->id), 4u);
  ASSERT_EQ(iv.hist_deltas.size(), 1u);
  EXPECT_EQ(iv.hist_deltas[0].id, reg.find("lat")->id);
  EXPECT_EQ(iv.hist_deltas[0].deltas[6], 1u);  // 100 -> bucket 6
}

TEST(TelemetryWire, TruncationNeverCrashes) {
  const auto full = tm_encode_frames(sample_frames());
  const auto whole = tm_decode_stream(full);
  for (std::size_t n = 0; n < full.size(); ++n) {
    const std::span<const std::uint8_t> prefix(full.data(), n);
    try {
      const auto got = tm_decode_stream(prefix);
      // A prefix that decodes cleanly must be a frame-boundary cut: the
      // decoded frames are a prefix of the full sequence.
      ASSERT_LE(got.size(), whole.size());
      for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], whole[i]);
    } catch (const ParseError&) {
      // mid-frame cut: the expected rejection
    }
  }
}

TEST(TelemetryWire, RejectsBadMagicAndVersion) {
  auto bytes = tm_encode_frames(sample_frames());
  auto bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_THROW(tm_decode_stream(bad_magic), ParseError);
  auto bad_version = bytes;
  bad_version[4] = 0xEE;
  EXPECT_THROW(tm_decode_stream(bad_version), ParseError);
}

TEST(TelemetryWire, RejectsLengthBombs) {
  // Frame payload length far beyond the buffer.
  std::vector<std::uint8_t> bytes;
  tm_write_header(bytes);
  put_u8(bytes, 2);  // interval frame
  put_u32(bytes, 0xFFFFFFFFu);
  EXPECT_THROW(tm_decode_stream(bytes), ParseError);

  // Directory count that cannot fit the remaining payload.
  bytes.clear();
  tm_write_header(bytes);
  put_u8(bytes, 1);   // directory frame
  put_u32(bytes, 8);  // payload: just the count + 4 bytes
  put_u32(bytes, 0x00FFFFFFu);
  put_u32(bytes, 0);
  EXPECT_THROW(tm_decode_stream(bytes), ParseError);

  // Location name length past the field.
  bytes.clear();
  tm_write_header(bytes);
  std::vector<std::uint8_t> payload;
  put_u8(payload, 4);  // locations tag
  std::vector<std::uint8_t> field;
  field.push_back(2);
  field.push_back(0);           // u16 count = 2
  field.push_back(0xFF);
  field.push_back(0x7F);        // u16 name_len = 32767, nothing behind it
  put_u32(payload, static_cast<std::uint32_t>(field.size()));
  payload.insert(payload.end(), field.begin(), field.end());
  put_u8(bytes, 2);
  put_u32(bytes, static_cast<std::uint32_t>(payload.size()));
  bytes.insert(bytes.end(), payload.begin(), payload.end());
  EXPECT_THROW(tm_decode_stream(bytes), ParseError);
}

TEST(TelemetryWire, SkipsUnknownFrameTypesAndTags) {
  std::vector<std::uint8_t> bytes;
  tm_write_header(bytes);
  // An unknown frame type with an opaque payload...
  put_u8(bytes, 99);
  put_u32(bytes, 3);
  bytes.insert(bytes.end(), {0xDE, 0xAD, 0xBF});
  // ...then an interval frame carrying an unknown tag before its header
  // tag: both must be skipped via their length prefixes.
  std::vector<std::uint8_t> payload;
  put_u8(payload, 9);  // unknown tag
  put_u32(payload, 4);
  payload.insert(payload.end(), {1, 2, 3, 4});
  put_u8(payload, 1);  // interval header tag
  put_u32(payload, 24);
  put_u64(payload, 77);  // seq
  put_u64(payload, 0);
  put_u64(payload, 1'000'000'000);
  put_u8(bytes, 2);
  put_u32(bytes, static_cast<std::uint32_t>(payload.size()));
  bytes.insert(bytes.end(), payload.begin(), payload.end());

  const auto frames = tm_decode_stream(bytes);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].kind, TmFrame::Kind::kInterval);
  EXPECT_EQ(frames[0].interval.seq, 77u);
  EXPECT_NEAR(frames[0].interval.seconds(), 1.0, 1e-12);
}

TEST(TelemetryWire, IncrementalFrameDecodeMatchesWholeStream) {
  const auto frames = sample_frames();
  const auto bytes = tm_encode_frames(frames);
  std::size_t offset = 0;
  tm_decode_header(bytes, offset);
  TmFrame f;
  std::vector<TmFrame> got;
  while (tm_decode_frame(bytes, offset, f)) got.push_back(f);
  EXPECT_EQ(got, frames);
  EXPECT_EQ(offset, bytes.size());
}

}  // namespace
}  // namespace droppkt::telemetry
