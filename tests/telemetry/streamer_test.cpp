#include "telemetry/streamer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "telemetry/clock.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/wire.hpp"

namespace droppkt::telemetry {
namespace {

std::vector<TmFrame> decode_all(const std::vector<std::uint8_t>& bytes) {
  return tm_decode_stream(bytes);
}

TEST(TelemetryStreamer, HeaderPlusPolledFramesFormAValidStream) {
  MetricRegistry reg;
  Counter& c = reg.counter("work.items");
  ManualClock clock;
  IntervalStreamer streamer(reg, clock.fn());

  c.add(21);
  clock.advance(1'000'000'000);
  TmLocation loc;
  loc.name = "cell-0";
  loc.effective_sessions = 3.5;
  streamer.tick({&loc, 1});

  std::vector<std::uint8_t> stream = streamer.header_frame();
  EXPECT_EQ(streamer.poll(stream), 1u);
  const auto frames = decode_all(stream);
  ASSERT_EQ(frames.size(), 2u);
  ASSERT_EQ(frames[0].kind, TmFrame::Kind::kDirectory);
  // The streamer's own drop counter is part of the directory.
  bool has_drop_metric = false;
  MetricId work_id = 0;
  for (const auto& e : frames[0].directory) {
    if (e.name == "telemetry.dropped_intervals") has_drop_metric = true;
    if (e.name == "work.items") work_id = e.id;
  }
  EXPECT_TRUE(has_drop_metric);
  ASSERT_EQ(frames[1].kind, TmFrame::Kind::kInterval);
  EXPECT_EQ(frames[1].interval.scalar(work_id), 21u);
  ASSERT_EQ(frames[1].interval.locations.size(), 1u);
  EXPECT_EQ(frames[1].interval.locations[0], loc);
  EXPECT_EQ(streamer.dropped_intervals(), 0u);
}

TEST(TelemetryStreamer, FullQueueDropsAndCountsNeverBlocks) {
  MetricRegistry reg;
  ManualClock clock;
  StreamerConfig cfg;
  cfg.queue_frames = 2;
  IntervalStreamer streamer(reg, clock.fn(), cfg);

  for (int i = 0; i < 5; ++i) {
    clock.advance(1'000'000'000);
    streamer.tick();
  }
  EXPECT_EQ(streamer.intervals_sampled(), 5u);
  EXPECT_EQ(streamer.dropped_intervals(), 3u);
  std::vector<std::uint8_t> out;
  EXPECT_EQ(streamer.poll(out), 2u);

  // The loss is itself visible on the wire. Sampling happens before the
  // enqueue attempt, so drops 1 and 2 were counted into deltas that rode
  // frames the queue then rejected; the next *delivered* interval carries
  // the delta since the last sample — the drop of tick 5.
  clock.advance(1'000'000'000);
  streamer.tick();
  out = streamer.header_frame();
  streamer.poll(out);
  const auto frames = decode_all(out);
  const MetricId drop_id =
      reg.find("telemetry.dropped_intervals")->id;
  EXPECT_EQ(frames.back().interval.scalar(drop_id), 1u);
}

TEST(TelemetryStreamer, CrossThreadTickAndPoll) {
  MetricRegistry reg;
  Counter& c = reg.counter("work.items");
  ManualClock clock;
  IntervalStreamer streamer(reg, clock.fn());

  constexpr std::uint64_t kTicks = 400;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kTicks; ++i) {
      c.inc();
      clock.advance(1'000'000);
      streamer.tick();
    }
  });

  std::vector<std::uint8_t> stream = streamer.header_frame();
  std::size_t frames_seen = 1;  // the directory frame
  while (true) {
    const std::size_t got = streamer.poll(stream);
    frames_seen += got;
    if (streamer.intervals_sampled() == kTicks && got == 0) break;
    std::this_thread::yield();
  }
  producer.join();
  frames_seen += streamer.poll(stream);

  // Every tick either reached the consumer or was counted as dropped.
  EXPECT_EQ(frames_seen - 1 + streamer.dropped_intervals(), kTicks);
  const auto frames = decode_all(stream);
  ASSERT_EQ(frames.size(), frames_seen);
  // Sequence numbers strictly increase and counter deltas are conserved
  // over the delivered intervals.
  std::uint64_t delivered = 0;
  std::uint64_t last_seq = 0;
  const MetricId work_id = reg.find("work.items")->id;
  for (std::size_t i = 1; i < frames.size(); ++i) {
    ASSERT_EQ(frames[i].kind, TmFrame::Kind::kInterval);
    if (i > 1) {
      EXPECT_GT(frames[i].interval.seq, last_seq);
    }
    last_seq = frames[i].interval.seq;
    delivered += frames[i].interval.scalar(work_id);
  }
  EXPECT_LE(delivered, kTicks);
}

}  // namespace
}  // namespace droppkt::telemetry
