#include "telemetry/sampler.hpp"

#include <gtest/gtest.h>

#include "telemetry/clock.hpp"
#include "telemetry/registry.hpp"

namespace droppkt::telemetry {
namespace {

constexpr std::uint64_t kSecond = 1'000'000'000;

TEST(TelemetrySampler, CountersBecomeDeltasGaugesPassThrough) {
  MetricRegistry reg;
  Counter& c = reg.counter("c");
  Gauge& g = reg.gauge("g");
  ManualClock clock(1000);
  IntervalSampler sampler(reg, clock.fn());

  c.add(10);
  g.set(7);
  clock.advance(2 * kSecond);
  IntervalSample s;
  sampler.sample(s);
  EXPECT_EQ(s.seq, 0u);
  EXPECT_EQ(s.t0_ns, 1000u);
  EXPECT_EQ(s.t1_ns, 1000u + 2 * kSecond);
  EXPECT_NEAR(s.seconds(), 2.0, 1e-12);
  ASSERT_EQ(s.scalars.size(), 2u);
  EXPECT_EQ(s.scalars[0], 10u);
  EXPECT_EQ(s.scalars[1], 7u);

  // Second interval: only the increment since the last sample; the gauge
  // reports its level, not a difference.
  c.add(5);
  g.set(2);
  clock.advance(kSecond);
  sampler.sample(s);
  EXPECT_EQ(s.seq, 1u);
  EXPECT_EQ(s.scalars[0], 5u);
  EXPECT_EQ(s.scalars[1], 2u);
  EXPECT_EQ(sampler.intervals_sampled(), 2u);
}

TEST(TelemetrySampler, HistogramBucketDeltas) {
  MetricRegistry reg;
  Histogram& h = reg.histogram("h", "ns");
  ManualClock clock;
  IntervalSampler sampler(reg, clock.fn());

  h.record(3);  // bucket 1
  clock.advance(kSecond);
  IntervalSample s;
  sampler.sample(s);
  ASSERT_EQ(s.hist_deltas.size(), 1u);
  EXPECT_EQ(s.hist_deltas[0].first, 0u);
  EXPECT_EQ(s.hist_deltas[0].second[1], 1u);

  // Quiet interval: all-zero deltas even though the cumulative counts
  // are not zero.
  clock.advance(kSecond);
  sampler.sample(s);
  for (const auto b : s.hist_deltas[0].second) EXPECT_EQ(b, 0u);

  h.record(3);
  h.record(100);  // bucket 6
  clock.advance(kSecond);
  sampler.sample(s);
  EXPECT_EQ(s.hist_deltas[0].second[1], 1u);
  EXPECT_EQ(s.hist_deltas[0].second[6], 1u);
}

TEST(TelemetrySampler, BaselineIsTakenAtConstruction) {
  MetricRegistry reg;
  Counter& c = reg.counter("c");
  c.add(1000);  // pre-existing total, must not appear as a delta
  ManualClock clock;
  IntervalSampler sampler(reg, clock.fn());
  c.add(1);
  clock.advance(kSecond);
  IntervalSample s;
  sampler.sample(s);
  EXPECT_EQ(s.scalars[0], 1u);
}

}  // namespace
}  // namespace droppkt::telemetry
