// The sharded ingest engine must be a pure parallelization: same sessions,
// same classes, any shard count.
#include "engine/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <tuple>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/dataset_builder.hpp"
#include "engine/feed.hpp"
#include "util/expect.hpp"

namespace droppkt::engine {
namespace {

const core::QoeEstimator& trained_estimator() {
  static const core::QoeEstimator est = [] {
    core::DatasetConfig cfg;
    cfg.num_sessions = 200;
    cfg.seed = 17;
    cfg.trace_pool_size = 40;
    cfg.catalog_size = 20;
    core::QoeEstimator e;
    e.train(core::build_dataset(has::svc1_profile(), cfg));
    return e;
  }();
  return est;
}

const Feed& shared_feed() {
  static const Feed feed =
      simulated_feed(has::svc1_profile(), 10, 3, /*seed=*/5);
  return feed;
}

/// Order-independent canonical form: client -> multiset of
/// (transaction count, predicted class, start time in ms).
using Canonical =
    std::map<std::string, std::multiset<std::tuple<std::size_t, int, long>>>;

Canonical canonicalize(const std::vector<core::MonitoredSession>& sessions) {
  Canonical c;
  for (const auto& s : sessions) {
    c[s.client].insert({s.transactions.size(), s.predicted_class,
                        std::lround(s.start_s * 1000.0)});
  }
  return c;
}

std::vector<core::MonitoredSession> run_plain(const Feed& feed) {
  std::vector<core::MonitoredSession> out;
  core::StreamingMonitor mon(
      trained_estimator(),
      [&](const core::MonitoredSession& s) { out.push_back(s); });
  for (const auto& r : feed) mon.observe(r.client, r.txn);
  mon.finish();
  return out;
}

std::vector<core::MonitoredSession> run_engine(const Feed& feed,
                                               EngineConfig cfg) {
  std::vector<core::MonitoredSession> out;
  std::mutex mu;
  IngestEngine eng(
      trained_estimator(),
      [&](const core::MonitoredSessionView& s) {
        const std::lock_guard<std::mutex> lock(mu);
        out.push_back(s.to_owned());
      },
      cfg);
  for (const auto& r : feed) eng.ingest(r.client, r.txn);
  eng.finish();
  return out;
}

std::vector<core::MonitoredSession> run_engine_batched(const Feed& feed,
                                                      EngineConfig cfg,
                                                      std::size_t batch) {
  std::vector<core::MonitoredSession> out;
  std::mutex mu;
  IngestEngine eng(
      trained_estimator(),
      [&](const core::MonitoredSessionView& s) {
        const std::lock_guard<std::mutex> lock(mu);
        out.push_back(s.to_owned());
      },
      cfg);
  for (std::size_t i = 0; i < feed.size(); i += batch) {
    const std::size_t n = std::min(batch, feed.size() - i);
    eng.ingest_batch({feed.data() + i, n});
  }
  eng.finish();
  return out;
}

TEST(IngestEngine, ValidatesConstruction) {
  core::QoeEstimator untrained;
  EXPECT_THROW(IngestEngine(untrained, [](const core::MonitoredSessionView&) {}),
               droppkt::ContractViolation);
  EXPECT_THROW(IngestEngine(trained_estimator(), nullptr),
               droppkt::ContractViolation);
  EngineConfig bad;
  bad.watermark_interval_s = 0.0;
  EXPECT_THROW(
      IngestEngine(trained_estimator(),
                   [](const core::MonitoredSessionView&) {}, bad),
      droppkt::ContractViolation);
}

TEST(IngestEngine, ClientsStickToOneShard) {
  EngineConfig cfg;
  cfg.num_shards = 4;
  IngestEngine eng(trained_estimator(),
                   [](const core::MonitoredSessionView&) {}, cfg);
  EXPECT_EQ(eng.num_shards(), 4u);
  for (int c = 0; c < 50; ++c) {
    const std::string client = "client-" + std::to_string(c);
    const std::size_t shard = eng.shard_of(client);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(eng.shard_of(client), shard);  // stable
  }
}

TEST(IngestEngine, OneShardMatchesPlainMonitor) {
  const auto plain = canonicalize(run_plain(shared_feed()));
  EngineConfig cfg;
  cfg.num_shards = 1;
  const auto sharded = canonicalize(run_engine(shared_feed(), cfg));
  EXPECT_EQ(plain, sharded);
}

TEST(IngestEngine, ShardCountDoesNotChangeSessions) {
  const auto baseline = canonicalize(run_plain(shared_feed()));
  for (const std::size_t n : {2u, 4u, 7u}) {
    EngineConfig cfg;
    cfg.num_shards = n;
    const auto sharded = canonicalize(run_engine(shared_feed(), cfg));
    EXPECT_EQ(baseline, sharded) << "diverged at " << n << " shards";
  }
}

// Batching is a mailbox transport detail: any ingest_batch() block size —
// including blocks far larger than the drain block and non-divisors of
// the feed length — must produce exactly the per-record-ingest sessions.
TEST(IngestEngine, BatchSizeDoesNotChangeSessions) {
  const auto baseline = canonicalize(run_plain(shared_feed()));
  for (const std::size_t shards : {1u, 3u}) {
    for (const std::size_t batch : {1u, 7u, 64u, 1024u}) {
      EngineConfig cfg;
      cfg.num_shards = shards;
      const auto batched =
          canonicalize(run_engine_batched(shared_feed(), cfg, batch));
      EXPECT_EQ(baseline, batched)
          << "diverged at " << shards << " shards, batch " << batch;
    }
  }
}

// Sinks that only need counts/bytes can turn off transaction
// materialization; the view then carries interned records (plus the pool
// to resolve SNIs) and classification is unchanged.
TEST(IngestEngine, UnmaterializedViewCarriesRecords) {
  std::mutex mu;
  std::vector<std::tuple<std::string, std::size_t, int>> got;
  EngineConfig cfg;
  cfg.num_shards = 2;
  cfg.monitor.materialize_transactions = false;
  {
    IngestEngine eng(
        trained_estimator(),
        [&](const core::MonitoredSessionView& s) {
          const std::lock_guard<std::mutex> lock(mu);
          EXPECT_TRUE(s.transactions.empty());
          EXPECT_NE(s.sni_pool, nullptr);
          for (const auto& r : s.records) {
            EXPECT_FALSE(s.sni_pool->view(r.sni_ref).empty());
          }
          got.emplace_back(std::string(s.client), s.records.size(),
                           s.predicted_class);
        },
        cfg);
    for (const auto& r : shared_feed()) eng.ingest(r.client, r.txn);
    eng.finish();
  }
  // Same sessions (client, record count, class) as the materialized run.
  std::multiset<std::tuple<std::string, std::size_t, int>> lean(
      got.begin(), got.end());
  std::multiset<std::tuple<std::string, std::size_t, int>> full;
  for (const auto& s : run_plain(shared_feed())) {
    full.insert({s.client, s.transactions.size(), s.predicted_class});
  }
  EXPECT_EQ(lean, full);
}

TEST(IngestEngine, StatsAccountForEveryRecord) {
  EngineConfig cfg;
  cfg.num_shards = 3;
  std::size_t sink_count = 0;
  std::mutex mu;
  IngestEngine eng(
      trained_estimator(),
      [&](const core::MonitoredSessionView&) {
        const std::lock_guard<std::mutex> lock(mu);
        ++sink_count;
      },
      cfg);
  for (const auto& r : shared_feed()) eng.ingest(r.client, r.txn);
  eng.finish();
  const auto snap = eng.stats();
  EXPECT_EQ(snap.records_ingested, shared_feed().size());
  EXPECT_EQ(snap.records_processed, shared_feed().size());
  EXPECT_EQ(snap.records_dropped, 0u);
  EXPECT_EQ(snap.sessions_reported, sink_count);
  EXPECT_EQ(snap.sessions_reported, eng.sessions_reported());
  EXPECT_EQ(snap.shards.size(), 3u);
  std::uint64_t per_shard_records = 0;
  for (const auto& s : snap.shards) {
    per_shard_records += s.records;
    EXPECT_LE(s.queue_high_water, 4096u);
    EXPECT_EQ(s.queue_depth, 0u);
  }
  EXPECT_EQ(per_shard_records, shared_feed().size());
  EXPECT_GT(snap.latency_p99_us, 0.0);
  EXPECT_GE(snap.latency_p99_us, snap.latency_p50_us);
}

TEST(IngestEngine, DropOldestShedsButConserves) {
  // A 2-slot mailbox under a large feed: the engine must neither block
  // forever nor lose track of a single record.
  EngineConfig cfg;
  cfg.num_shards = 2;
  cfg.queue_capacity = 2;
  cfg.backpressure = util::BackpressurePolicy::kDropOldest;
  std::mutex mu;
  std::size_t sessions = 0;
  IngestEngine eng(
      trained_estimator(),
      [&](const core::MonitoredSessionView&) {
        const std::lock_guard<std::mutex> lock(mu);
        ++sessions;
      },
      cfg);
  for (const auto& r : shared_feed()) eng.ingest(r.client, r.txn);
  eng.finish();
  const auto snap = eng.stats();
  EXPECT_EQ(snap.records_ingested, shared_feed().size());
  EXPECT_LE(snap.records_processed, snap.records_ingested);
  // Dropped counts records and watermarks; together with processed work it
  // must cover everything that was enqueued.
  EXPECT_GE(snap.records_processed + snap.records_dropped,
            snap.records_ingested);
}

TEST(IngestEngine, WatermarkEvictsIdleClientOnQuietShard) {
  // One client goes silent early; other clients keep the feed moving. The
  // quiet client's session must be emitted by the watermark broadcast
  // *before* finish() — that is the whole point of the low watermark.
  EngineConfig cfg;
  cfg.num_shards = 4;
  cfg.monitor.client_idle_timeout_s = 60.0;
  cfg.monitor.min_transactions = 2;
  cfg.watermark_interval_s = 10.0;
  std::mutex mu;
  std::vector<std::string> emitted;
  IngestEngine eng(
      trained_estimator(),
      [&](const core::MonitoredSessionView& s) {
        const std::lock_guard<std::mutex> lock(mu);
        emitted.push_back(std::string(s.client));
      },
      cfg);

  const auto make_txn = [](double start, std::string sni) {
    trace::TlsTransaction t;
    t.start_s = start;
    t.end_s = start + 8.0;
    t.ul_bytes = 500.0;
    t.dl_bytes = 1e6;
    t.sni = std::move(sni);
    t.http_count = 3;
    return t;
  };
  // The quiet client: 4 transactions around t=0.
  for (int i = 0; i < 4; ++i) {
    eng.ingest("quiet", make_txn(i * 2.0, "a"));
  }
  // Background clients carry feed time far past the idle timeout.
  for (int i = 0; i < 200; ++i) {
    std::string client = "busy-";
    client += std::to_string(i % 5);
    std::string sni = "b";
    sni += std::to_string(i % 3);
    eng.ingest(client, make_txn(10.0 + i * 2.0, sni));
  }
  // The eviction is asynchronous; poll briefly rather than calling
  // finish(), which would flush everything anyway.
  bool quiet_emitted = false;
  for (int tries = 0; tries < 500 && !quiet_emitted; ++tries) {
    {
      const std::lock_guard<std::mutex> lock(mu);
      for (const auto& c : emitted) quiet_emitted |= (c == "quiet");
    }
    if (!quiet_emitted) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(quiet_emitted)
      << "idle client not evicted by watermark before finish()";
  eng.finish();
  // Exactly one session for the quiet client overall (no double emission).
  std::size_t quiet_sessions = 0;
  for (const auto& c : emitted) quiet_sessions += (c == "quiet");
  EXPECT_EQ(quiet_sessions, 1u);
}

TEST(IngestEngine, SurfacesProvisionalEstimatesInFlight) {
  // With a provisional sink, each shard's monitor reports in-flight QoE on
  // the configured cadence: every client with >= min_transactions records
  // produces provisionals before its session completes, the counters
  // account for each one, and the estimates reference live clients.
  EngineConfig cfg;
  cfg.num_shards = 3;
  cfg.monitor.min_transactions = 3;
  cfg.monitor.provisional_every = 4;
  std::mutex mu;
  std::map<std::string, std::size_t> provisional_counts;
  std::size_t bad = 0;
  IngestEngine eng(
      trained_estimator(), [](const core::MonitoredSessionView&) {},
      [&](const core::ProvisionalEstimate& e) {
        const std::lock_guard<std::mutex> lock(mu);
        ++provisional_counts[std::string(e.client)];
        if (e.predicted_class < 0 || e.predicted_class > 2 ||
            e.transactions_observed == 0 ||
            e.last_activity_s < e.session_start_s) {
          ++bad;
        }
      },
      cfg);
  for (const auto& r : shared_feed()) eng.ingest(r.client, r.txn);
  eng.finish();

  EXPECT_EQ(bad, 0u);
  EXPECT_FALSE(provisional_counts.empty());
  std::size_t total = 0;
  for (const auto& [client, n] : provisional_counts) total += n;
  EXPECT_EQ(eng.provisionals_reported(), total);
  EXPECT_EQ(eng.stats().provisionals_reported, total);

  // Without a sink (the 3-arg constructor), nothing fires even with the
  // cadence configured.
  IngestEngine quiet_eng(trained_estimator(),
                         [](const core::MonitoredSessionView&) {}, cfg);
  for (const auto& r : shared_feed()) quiet_eng.ingest(r.client, r.txn);
  quiet_eng.finish();
  EXPECT_EQ(quiet_eng.provisionals_reported(), 0u);
}

}  // namespace
}  // namespace droppkt::engine
