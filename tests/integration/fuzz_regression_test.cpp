// Replays the committed fuzz seed corpus and every fuzzer-found crash
// regression through the exact harness code the fuzz targets run
// (fuzz/harnesses.cpp is compiled into this binary). A harness aborts the
// process on a round-trip break, so a regression here fails loudly; under
// -DDROPPKT_SANITIZE=address;undefined the CI run also re-checks every
// historical crash input for memory errors.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "harnesses.hpp"

namespace droppkt::fuzz {
namespace {

namespace fs = std::filesystem;

using Harness = std::function<int(const std::uint8_t*, std::size_t)>;

fs::path repo_root() { return fs::path(DROPPKT_SOURCE_DIR); }

std::vector<fs::path> inputs_for(const std::string& target) {
  std::vector<fs::path> files;
  for (const char* kind : {"corpus", "regressions"}) {
    const fs::path dir = repo_root() / "fuzz" / kind / target;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

void replay(const std::string& target, const Harness& harness,
            std::size_t min_expected) {
  const auto files = inputs_for(target);
  // Catches the corpus silently disappearing (bad checkout, renamed dir):
  // an empty replay would otherwise pass vacuously.
  EXPECT_GE(files.size(), min_expected)
      << "missing committed inputs under fuzz/{corpus,regressions}/"
      << target;
  for (const auto& path : files) {
    SCOPED_TRACE(path.string());
    std::ifstream ifs(path, std::ios::binary);
    ASSERT_TRUE(ifs.good());
    const std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(ifs),
                                          std::istreambuf_iterator<char>()};
    EXPECT_EQ(harness(bytes.data(), bytes.size()), 0);
  }
}

TEST(FuzzRegression, TlsBinary) { replay("tls_binary", one_tls_binary, 5); }

TEST(FuzzRegression, FeedLine) { replay("feed_line", one_feed_line, 4); }

TEST(FuzzRegression, Csv) { replay("csv", one_csv, 4); }

TEST(FuzzRegression, Model) { replay("model", one_model, 6); }

TEST(FuzzRegression, TelemetryWire) {
  replay("telemetry_wire", one_telemetry_wire, 3);
}

TEST(FuzzRegression, FeedCapture) {
  replay("feed_capture", one_feed_capture, 3);
}

}  // namespace
}  // namespace droppkt::fuzz
