// Cross-module property tests: invariants that must hold across the whole
// simulation -> measurement -> feature stack for arbitrary seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/flow_features.hpp"
#include "core/session_id.hpp"
#include "core/tls_features.hpp"
#include "core/windowed.hpp"
#include "util/expect.hpp"

namespace droppkt::core {
namespace {

class CrossModuleProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  LabeledDataset dataset() const {
    DatasetConfig cfg;
    cfg.num_sessions = 12;
    cfg.seed = GetParam();
    cfg.trace_pool_size = 25;
    cfg.catalog_size = 10;
    return build_dataset(has::svc1_profile(), cfg);
  }
};

TEST_P(CrossModuleProperty, TlsBytesCoverHttpBytesPlusHandshakes) {
  for (const auto& s : dataset()) {
    double http_bytes = 0.0;
    for (const auto& t : s.record.http) http_bytes += t.ul_bytes + t.dl_bytes;
    double tls_bytes = 0.0;
    for (const auto& t : s.record.tls) tls_bytes += t.ul_bytes + t.dl_bytes;
    // TLS view = HTTP payloads + one handshake per connection.
    EXPECT_GT(tls_bytes, http_bytes);
    EXPECT_LT(tls_bytes, http_bytes * 2.0 + 1e6);
  }
}

TEST_P(CrossModuleProperty, SplitSessionsPreservesTransactions) {
  const auto stream = build_back_to_back(has::svc1_profile(), 4, GetParam());
  const auto sessions = split_sessions(stream.merged);
  std::size_t total = 0;
  for (const auto& s : sessions) total += s.size();
  EXPECT_EQ(total, stream.merged.size());
  // Sessions are contiguous, ordered partitions of the merged log.
  std::size_t idx = 0;
  for (const auto& s : sessions) {
    for (const auto& t : s) {
      EXPECT_EQ(t.start_s, stream.merged[idx].start_s);
      ++idx;
    }
  }
}

TEST_P(CrossModuleProperty, FlowViewConservesPacketBytes) {
  for (const auto& s : dataset()) {
    // Flow records over different export configs must all conserve bytes.
    const auto coarse = flows_for_session(
        s.record, {.active_timeout_s = 600.0, .inactive_timeout_s = 120.0});
    const auto fine = flows_for_session(
        s.record, {.active_timeout_s = 5.0, .inactive_timeout_s = 5.0});
    auto total = [](const trace::FlowLog& flows) {
      double b = 0.0;
      for (const auto& f : flows) b += f.ul_bytes + f.dl_bytes;
      return b;
    };
    EXPECT_NEAR(total(coarse), total(fine), 1.0);
    EXPECT_GE(fine.size(), coarse.size());
  }
}

TEST_P(CrossModuleProperty, WindowStallLabelsTrackGroundTruthTotals) {
  for (const auto& s : dataset()) {
    WindowedConfig cfg;
    cfg.stall_fraction_threshold = 0.01;
    const auto windows = windows_for_session(s, cfg);
    double labelled = 0.0;
    for (int w : windows.stalled) labelled += w * cfg.window_s;
    const double truth = s.record.ground_truth.stall_time_s();
    // Windowed labelling over-counts by at most one window per stall and
    // never misses more than the sub-threshold slivers.
    EXPECT_GE(labelled + 1.0,
              truth - cfg.window_s * (s.record.ground_truth.stalls.size() + 1));
    if (truth == 0.0) {
      EXPECT_EQ(labelled, 0.0);
    }
  }
}

TEST_P(CrossModuleProperty, TruncationConvergesToFullFeatures) {
  for (const auto& s : dataset()) {
    const auto full = extract_tls_features(s.record.tls);
    const auto truncated =
        extract_tls_features(truncate_tls_log(s.record.tls, 1e7));
    for (std::size_t i = 0; i < full.size(); ++i) {
      EXPECT_NEAR(full[i], truncated[i], std::abs(full[i]) * 1e-9 + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossModuleProperty,
                         ::testing::Range<std::uint64_t>(100, 106));

}  // namespace
}  // namespace droppkt::core
