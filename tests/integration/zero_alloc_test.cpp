// Counting-allocator gate for the allocation-free ingest hot path.
//
// The carrier-scale claim is that steady-state record ingest performs
// ZERO heap allocations per record: strings are interned once, records
// move as PODs, per-client buffers and emission scratch keep their
// capacity across sessions. This binary replaces global operator new with
// a thread-local counting shim and asserts an exact zero over a
// steady-state window, on both sides of the mailbox:
//   * the monitor/worker side (observe -> boundary scan -> classify ->
//     emit), driven single-threaded, and
//   * the engine's producer side (intern -> POD convert -> enqueue,
//     batched and unbatched).
// Warmup first feeds enough records that every client is known, every
// scratch buffer has reached its high-water capacity, and every string is
// interned; the measured window then replays the same shape of traffic.
//
// Kept in its own test executable so the operator-new replacement cannot
// perturb the other suites. Skipped under sanitizers, which own the
// allocator.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "core/dataset_builder.hpp"
#include "core/monitor.hpp"
#include "engine/engine.hpp"
#include "engine/feed.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define DROPPKT_ALLOC_COUNTING 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define DROPPKT_ALLOC_COUNTING 0
#else
#define DROPPKT_ALLOC_COUNTING 1
#endif
#else
#define DROPPKT_ALLOC_COUNTING 1
#endif

namespace {
// Thread-local so worker/producer threads never pollute the measuring
// thread's count; each test attributes allocations to the thread that
// made them.
thread_local std::uint64_t t_allocations = 0;
}  // namespace

#if DROPPKT_ALLOC_COUNTING

namespace {

void* counted_alloc(std::size_t n) {
  ++t_allocations;
  if (n == 0) n = 1;
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_alloc(std::size_t n, std::align_val_t align) {
  ++t_allocations;
  if (n == 0) n = 1;
  const std::size_t a = static_cast<std::size_t>(align);
  // aligned_alloc requires the size to be a multiple of the alignment.
  void* p = std::aligned_alloc(a, (n + a - 1) / a * a);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

}  // namespace

void* operator new(std::size_t n) { return counted_alloc(n); }
void* operator new[](std::size_t n) { return counted_alloc(n); }
void* operator new(std::size_t n, std::align_val_t a) {
  return counted_alloc(n, a);
}
void* operator new[](std::size_t n, std::align_val_t a) {
  return counted_alloc(n, a);
}
void* operator new(std::size_t n, const std::nothrow_t&) noexcept {
  ++t_allocations;
  return std::malloc(n == 0 ? 1 : n);
}
void* operator new[](std::size_t n, const std::nothrow_t&) noexcept {
  ++t_allocations;
  return std::malloc(n == 0 ? 1 : n);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // DROPPKT_ALLOC_COUNTING

namespace droppkt::engine {
namespace {

const core::QoeEstimator& trained_estimator() {
  static const core::QoeEstimator est = [] {
    core::DatasetConfig cfg;
    cfg.num_sessions = 150;
    cfg.seed = 23;
    cfg.trace_pool_size = 30;
    cfg.catalog_size = 15;
    core::QoeEstimator e;
    e.train(core::build_dataset(has::svc1_profile(), cfg));
    return e;
  }();
  return est;
}

/// Two-session-per-client synthetic feed: session 1 is warmup (slots,
/// interned strings, scratch capacities all reach steady state), session 2
/// is the measured window with the identical traffic shape.
const Feed& steady_feed() {
  static const Feed feed = [] {
    SynthFeedConfig cfg;
    cfg.num_clients = 60;
    cfg.sessions_per_client = 2;
    cfg.txns_per_session = 24;
    // All clients start within 100 s, so the warmup prefix provably
    // contains every client's first session (and so every client slot,
    // interned string, and scratch high-water mark).
    cfg.horizon_s = 100.0;
    cfg.seed = 7;
    return synthetic_feed(cfg);
  }();
  return feed;
}

TEST(ZeroAlloc, MonitorSteadyStateObserveAndEmit) {
#if !DROPPKT_ALLOC_COUNTING
  GTEST_SKIP() << "allocator owned by a sanitizer";
#else
  const Feed& feed = steady_feed();
  std::size_t sessions = 0;
  core::MonitorConfig mcfg;
  mcfg.materialize_transactions = false;
  core::StreamingMonitor mon(
      core::StreamingMonitor::ViewSinkTag{}, trained_estimator(),
      [&](const core::MonitoredSessionView& s) {
        sessions += s.records.empty() ? 0 : 1;
      },
      mcfg);

  // Warmup: the first 60% of records covers every client's first session
  // plus (for most) the idle-gap emission that opens its second.
  const std::size_t warm = feed.size() * 6 / 10;
  for (std::size_t i = 0; i < warm; ++i) {
    mon.observe(feed[i].client, feed[i].txn);
  }
  const std::size_t warm_sessions = sessions;

  const std::uint64_t before = t_allocations;
  for (std::size_t i = warm; i < feed.size(); ++i) {
    mon.observe(feed[i].client, feed[i].txn);
  }
  const std::uint64_t during = t_allocations - before;

  mon.finish();
  EXPECT_GT(warm_sessions, 0u) << "warmup never emitted — window too short";
  EXPECT_GT(sessions, warm_sessions)
      << "measured window emitted no sessions — it exercised no emit path";
  EXPECT_EQ(during, 0u)
      << during << " heap allocations in the steady-state observe window";
#endif
}

TEST(ZeroAlloc, EngineProducerSteadyStateIngest) {
#if !DROPPKT_ALLOC_COUNTING
  GTEST_SKIP() << "allocator owned by a sanitizer";
#else
  const Feed& feed = steady_feed();
  EngineConfig cfg;
  cfg.num_shards = 1;
  cfg.queue_capacity = 1u << 16;  // never exert backpressure in this test
  cfg.monitor.materialize_transactions = false;
  IngestEngine eng(trained_estimator(),
                   [](const core::MonitoredSessionView&) {}, cfg);

  const std::size_t warm = feed.size() / 2;
  for (std::size_t i = 0; i < warm; ++i) {
    eng.ingest(feed[i].client, feed[i].txn);
  }

  // Unbatched producer path: intern + POD convert + push, per record.
  const std::size_t split = warm + (feed.size() - warm) / 2;
  const std::uint64_t before_single = t_allocations;
  for (std::size_t i = warm; i < split; ++i) {
    eng.ingest(feed[i].client, feed[i].txn);
  }
  const std::uint64_t single = t_allocations - before_single;

  // Batched producer path: staging reuses its reserved block, push_bulk
  // moves PODs.
  const std::uint64_t before_batch = t_allocations;
  for (std::size_t i = split; i < feed.size(); i += 64) {
    const std::size_t n = std::min<std::size_t>(64, feed.size() - i);
    eng.ingest_batch({feed.data() + i, n});
  }
  const std::uint64_t batched = t_allocations - before_batch;

  eng.finish();
  EXPECT_EQ(single, 0u)
      << single << " producer-side allocations across unbatched ingest";
  EXPECT_EQ(batched, 0u)
      << batched << " producer-side allocations across batched ingest";
  EXPECT_GT(eng.sessions_reported(), 0u);
#endif
}

}  // namespace
}  // namespace droppkt::engine
