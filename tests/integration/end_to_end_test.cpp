// End-to-end reproductions of the paper's headline claims, at reduced
// scale so the suite stays fast. The bench binaries run the full scale.
#include <gtest/gtest.h>

#include "core/estimator.hpp"
#include "core/pipeline.hpp"
#include "core/session_id.hpp"
#include "net/link_model.hpp"
#include "trace/packet_generator.hpp"
#include "trace/serialize.hpp"
#include "util/rng.hpp"

namespace droppkt::core {
namespace {

LabeledDataset dataset(const has::ServiceProfile& svc, std::size_t n,
                       std::uint64_t seed) {
  DatasetConfig cfg;
  cfg.num_sessions = n;
  cfg.seed = seed;
  cfg.trace_pool_size = 80;
  cfg.catalog_size = 30;
  return build_dataset(svc, cfg);
}

TEST(EndToEnd, ServiceDesignDrivesDegradationMode) {
  // Paper Section 4.1: poor networks -> low quality in Svc1, re-buffering
  // in Svc2.
  const auto svc1 = dataset(has::svc1_profile(), 300, 1);
  const auto svc2 = dataset(has::svc2_profile(), 300, 1);
  auto fraction = [](const LabeledDataset& ds, auto pred) {
    std::size_t n = 0;
    for (const auto& s : ds) n += pred(s);
    return static_cast<double>(n) / ds.size();
  };
  const double svc1_high_rebuf =
      fraction(svc1, [](const auto& s) { return s.labels.rebuffering == 0; });
  const double svc2_high_rebuf =
      fraction(svc2, [](const auto& s) { return s.labels.rebuffering == 0; });
  const double svc1_low_q =
      fraction(svc1, [](const auto& s) { return s.labels.video_quality == 0; });
  const double svc2_low_q =
      fraction(svc2, [](const auto& s) { return s.labels.video_quality == 0; });
  EXPECT_GT(svc2_high_rebuf, svc1_high_rebuf * 1.5);
  EXPECT_GT(svc1_low_q, svc2_low_q * 1.2);
}

TEST(EndToEnd, CombinedQoeDetectionRecallIsHigh) {
  // Paper: 73-85% recall in identifying low combined QoE from TLS data.
  const auto ds = dataset(has::svc1_profile(), 400, 2);
  const auto cv = evaluate_tls(ds, QoeTarget::kCombined);
  EXPECT_GT(cv.recall(0), 0.7);
  EXPECT_GT(cv.accuracy(), 0.6);
}

TEST(EndToEnd, ErrorsConcentrateBetweenNeighboringClasses) {
  // Paper Table 2: low misclassified as high (and vice versa) is rare.
  const auto ds = dataset(has::svc1_profile(), 400, 3);
  const auto cv = evaluate_tls(ds, QoeTarget::kCombined);
  const auto& cm = cv.pooled;
  const double low_as_high =
      static_cast<double>(cm.count(0, 2)) /
      std::max<std::size_t>(1, cm.actual_total(0));
  const double low_as_med =
      static_cast<double>(cm.count(0, 1)) /
      std::max<std::size_t>(1, cm.actual_total(0));
  EXPECT_LT(low_as_high, 0.1);
  EXPECT_LE(low_as_high, low_as_med + 0.02);
}

TEST(EndToEnd, PacketFeaturesAtLeastMatchTls) {
  // Paper Table 4: ML16 on packet traces gains 5-7% accuracy over TLS.
  // At test scale we assert it is not meaningfully worse; the bench
  // reproduces the gains at full scale.
  const auto ds = dataset(has::svc2_profile(), 350, 4);
  const auto tls = scores_from(evaluate_tls(ds, QoeTarget::kCombined));
  const auto pkt_data = make_ml16_dataset(ds, QoeTarget::kCombined);
  const auto pkt = scores_from(
      ml::cross_validate(pkt_data, forest_factory(), 5, 42 ^ 0xcafeULL));
  EXPECT_GT(pkt.accuracy, tls.accuracy - 0.03);
}

TEST(EndToEnd, OverheadRatiosHavePaperShape) {
  // Paper: ~1400x more packets than TLS transactions per session.
  const auto ds = dataset(has::svc1_profile(), 40, 5);
  double packets = 0.0, tls = 0.0;
  for (const auto& s : ds) {
    const trace::PacketTraceGenerator gen(
        net::link_params_for(s.record.environment));
    packets += static_cast<double>(gen.estimate_packet_count(s.record.http));
    tls += static_cast<double>(s.record.tls.size());
  }
  const double ratio = packets / tls;
  EXPECT_GT(ratio, 100.0);     // orders of magnitude apart
  EXPECT_LT(ratio, 100000.0);  // sanity
}

TEST(EndToEnd, TlsCoarsenessMatchesPaperScale) {
  // Paper: 19.5 TLS transactions and 12.1 HTTP per TLS for Svc1.
  const auto ds = dataset(has::svc1_profile(), 150, 6);
  double tls = 0.0, http = 0.0;
  for (const auto& s : ds) {
    tls += static_cast<double>(s.record.tls.size());
    http += static_cast<double>(s.record.http.size());
  }
  const double tls_per_session = tls / ds.size();
  const double http_per_tls = http / tls;
  EXPECT_GT(tls_per_session, 5.0);
  EXPECT_LT(tls_per_session, 80.0);
  EXPECT_GT(http_per_tls, 4.0);
  EXPECT_LT(http_per_tls, 40.0);
}

TEST(EndToEnd, ProxyCsvRoundTripFeedsEstimator) {
  // Deployment path: TLS logs serialized by a proxy, re-read, classified.
  const auto train = dataset(has::svc1_profile(), 200, 7);
  QoeEstimator est;
  est.train(train);

  const auto test = dataset(has::svc1_profile(), 20, 8);
  const std::string path = ::testing::TempDir() + "/droppkt_e2e.csv";
  for (const auto& s : test) {
    trace::write_tls_csv_file(s.record.tls, path);
    const auto back = trace::read_tls_csv_file(path);
    EXPECT_EQ(est.predict(back), est.predict(s.record.tls));
  }
  std::remove(path.c_str());
}

TEST(EndToEnd, TemporalFeaturesAmongTopImportances) {
  // Paper Fig. 6: CUM_DL_60s and friends appear in the top-10 across
  // services; the volume features dominate.
  const auto ds = dataset(has::svc1_profile(), 400, 9);
  QoeEstimator est;
  est.train(ds);
  const auto imp = est.feature_importances();
  bool temporal_in_top10 = false;
  for (std::size_t i = 0; i < 10; ++i) {
    if (imp[i].first.rfind("CUM_", 0) == 0) temporal_in_top10 = true;
  }
  EXPECT_TRUE(temporal_in_top10);
}

}  // namespace
}  // namespace droppkt::core
