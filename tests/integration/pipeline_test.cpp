#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/expect.hpp"

namespace droppkt::core {
namespace {

LabeledDataset dataset(const has::ServiceProfile& svc, std::size_t n,
                       std::uint64_t seed) {
  DatasetConfig cfg;
  cfg.num_sessions = n;
  cfg.seed = seed;
  cfg.trace_pool_size = 60;
  cfg.catalog_size = 20;
  return build_dataset(svc, cfg);
}

TEST(Pipeline, FeatureSetNamesNested) {
  const auto sl = feature_set_names(FeatureSet::kSessionLevel);
  const auto ts = feature_set_names(FeatureSet::kSessionPlusTransaction);
  const auto full = feature_set_names(FeatureSet::kFull);
  EXPECT_EQ(sl.size(), 4u);
  EXPECT_EQ(ts.size(), 22u);
  EXPECT_EQ(full.size(), 38u);
  // Nesting: every smaller set is a prefix family of the larger.
  for (const auto& n : sl) {
    EXPECT_NE(std::find(ts.begin(), ts.end(), n), ts.end());
  }
  for (const auto& n : ts) {
    EXPECT_NE(std::find(full.begin(), full.end(), n), full.end());
  }
}

TEST(Pipeline, FeatureSetToString) {
  EXPECT_EQ(to_string(FeatureSet::kSessionLevel), "Only Session-level (SL)");
  EXPECT_NE(to_string(FeatureSet::kFull).find("Temporal"), std::string::npos);
}

TEST(Pipeline, MakeTlsDatasetShapes) {
  const auto ds = dataset(has::svc1_profile(), 50, 1);
  const auto full = make_tls_dataset(ds, QoeTarget::kCombined);
  EXPECT_EQ(full.size(), 50u);
  EXPECT_EQ(full.num_features(), 38u);
  EXPECT_EQ(full.num_classes(), 3);
  const auto sl = make_tls_dataset(ds, QoeTarget::kCombined, {},
                                   FeatureSet::kSessionLevel);
  EXPECT_EQ(sl.num_features(), 4u);
}

TEST(Pipeline, MakeTlsDatasetLabelsFollowTarget) {
  const auto ds = dataset(has::svc2_profile(), 50, 2);
  const auto rb = make_tls_dataset(ds, QoeTarget::kRebuffering);
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(rb.label(i), ds[i].labels.rebuffering);
  }
}

TEST(Pipeline, MakeMl16DatasetShapes) {
  const auto ds = dataset(has::svc1_profile(), 30, 3);
  const auto pkt = make_ml16_dataset(ds, QoeTarget::kCombined);
  EXPECT_EQ(pkt.size(), 30u);
  EXPECT_EQ(pkt.num_features(), ml16_feature_names().size());
}

TEST(Pipeline, Ml16DatasetDeterministic) {
  const auto ds = dataset(has::svc1_profile(), 20, 4);
  const auto a = make_ml16_dataset(ds, QoeTarget::kCombined);
  const auto b = make_ml16_dataset(ds, QoeTarget::kCombined);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto ra = a.row(i);
    const auto rb = b.row(i);
    for (std::size_t j = 0; j < ra.size(); ++j) EXPECT_EQ(ra[j], rb[j]);
  }
}

TEST(Pipeline, EmptyDatasetRejected) {
  EXPECT_THROW(make_tls_dataset({}, QoeTarget::kCombined),
               droppkt::ContractViolation);
  EXPECT_THROW(make_ml16_dataset({}, QoeTarget::kCombined),
               droppkt::ContractViolation);
}

TEST(Pipeline, ScoresFromExtractsLowClass) {
  ml::CrossValidationResult cv(3);
  cv.pooled.add(0, 0);
  cv.pooled.add(0, 1);
  cv.pooled.add(1, 0);
  cv.pooled.add(2, 2);
  const auto s = scores_from(cv);
  EXPECT_NEAR(s.accuracy, 0.5, 1e-12);
  EXPECT_NEAR(s.recall_low, 0.5, 1e-12);
  EXPECT_NEAR(s.precision_low, 0.5, 1e-12);
}

TEST(Pipeline, EvaluateTlsBeatsMajorityBaseline) {
  const auto ds = dataset(has::svc1_profile(), 250, 5);
  const auto cv = evaluate_tls(ds, QoeTarget::kCombined);
  // Majority-class share:
  const auto data = make_tls_dataset(ds, QoeTarget::kCombined);
  const auto counts = data.class_counts();
  const double majority =
      static_cast<double>(*std::max_element(counts.begin(), counts.end())) /
      static_cast<double>(data.size());
  EXPECT_GT(cv.accuracy(), majority + 0.1);
}

TEST(Pipeline, MoreFeaturesHelp) {
  // The paper's Table 3 trend: SL < SL+TS <= full, within tolerance.
  const auto ds = dataset(has::svc1_profile(), 300, 6);
  const auto sl = evaluate_tls(ds, QoeTarget::kCombined,
                               FeatureSet::kSessionLevel);
  const auto full = evaluate_tls(ds, QoeTarget::kCombined, FeatureSet::kFull);
  EXPECT_GT(full.accuracy() + 0.02, sl.accuracy());
}

TEST(Pipeline, ForestFactoryProducesIndependentModels) {
  const auto f = forest_factory(1, 5);
  auto a = f();
  auto b = f();
  EXPECT_NE(a.get(), b.get());
  EXPECT_NE(a, nullptr);
}

}  // namespace
}  // namespace droppkt::core
