// Must not fire: an allowlisted unordered map used only for point
// lookup/erase — no iteration, so determinism is unaffected.
#include <string>
#include <unordered_map>

namespace fix {

class LookupOnly {
 public:
  void forget(const std::string& key) { states_.erase(key); }
  bool knows(const std::string& key) const {
    return states_.find(key) != states_.end();
  }

 private:
  std::unordered_map<std::string, int> states_;
};

}  // namespace fix
