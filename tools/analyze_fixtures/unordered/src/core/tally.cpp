// True positives: in a determinism layer, declaring an unordered
// container needs a justifying allowlist entry, and iterating one is a
// violation outright (iteration order is unspecified — the canonical way
// shard-count byte-identity breaks).
#include <string>
#include <unordered_map>

namespace fix {

class Tally {
 public:
  double total() const {
    double sum = 0.0;
    for (const auto& [key, value] : counts_) {  // must fire: iteration
      sum += value;
    }
    return sum;
  }

 private:
  std::unordered_map<std::string, double> counts_;  // must fire: no entry
};

}  // namespace fix
