// Must not fire: identical iteration to the core fixture, but trace is
// not a determinism layer (feed builders order their own output).
#include <string>
#include <unordered_map>

namespace fix {

class FeedIndex {
 public:
  double total() const {
    double sum = 0.0;
    for (const auto& [key, value] : weights_) {
      sum += value;
    }
    return sum;
  }

 private:
  std::unordered_map<std::string, double> weights_;
};

}  // namespace fix
