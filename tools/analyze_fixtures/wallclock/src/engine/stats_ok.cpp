// Must not fire: a stats-only latency stamp, justified by an allowlist
// entry naming the enclosing function.
#include <chrono>

namespace fix {

class LatencyProbe {
 public:
  void stamp() {
    last_ = std::chrono::steady_clock::now();  // allowlisted: quiet
  }

 private:
  std::chrono::steady_clock::time_point last_;
};

}  // namespace fix
