// True positives: wall-clock reads and thread ids in a determinism
// layer. Feed time must come from the records themselves.
#include <chrono>
#include <thread>

namespace fix {

double now_seconds() {
  const auto tp = std::chrono::steady_clock::now();  // must fire
  return std::chrono::duration<double>(tp.time_since_epoch()).count();
}

std::size_t worker_tag() {
  return std::hash<std::thread::id>{}(
      std::this_thread::get_id());  // must fire
}

}  // namespace fix
