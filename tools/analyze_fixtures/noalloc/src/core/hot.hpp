// True positive: the annotated entry point never allocates itself, but a
// transitively reached helper does — only whole-program reachability can
// flag this. The cold_report() path below it must stay quiet: it also
// allocates, but nothing annotated reaches it.
#pragma once

#include <vector>

#define DROPPKT_NOALLOC

namespace fix {

class Recorder {
 public:
  DROPPKT_NOALLOC void observe(int v) { stage(v); }

  void cold_report() {
    summary_.push_back(staged_);  // unreachable from observe(): quiet
  }

 private:
  void stage(int v) {
    staged_ = v;
    history_.push_back(v);  // reachable from observe(): must fire
  }

  int staged_ = 0;
  std::vector<int> history_;
  std::vector<int> summary_;
};

}  // namespace fix
