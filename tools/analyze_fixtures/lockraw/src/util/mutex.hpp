// Must not fire (with its allowlist entry): the one sanctioned home of
// the raw primitives — the annotated wrapper itself, mirroring the real
// util/mutex.hpp.
#pragma once

#include <mutex>

namespace fix {

class Mutex {
 public:
  void lock() { mu_.lock(); }
  void unlock() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

}  // namespace fix
