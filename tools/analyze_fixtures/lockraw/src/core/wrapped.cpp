// Must not fire: locking through the annotated wrapper type.
#include "util/mutex.hpp"

namespace fix {

class WrappedCounter {
 public:
  void bump() {
    mutex_.lock();
    ++value_;
    mutex_.unlock();
  }

 private:
  Mutex mutex_;
  long value_ = 0;
};

}  // namespace fix
