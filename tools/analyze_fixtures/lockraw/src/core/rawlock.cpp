// True positive: raw standard locking primitives hide critical sections
// from Clang thread safety analysis.
#include <mutex>

namespace fix {

class Counter {
 public:
  void bump() {
    const std::lock_guard<std::mutex> lock(mutex_);  // must fire
    ++value_;
  }

 private:
  std::mutex mutex_;  // must fire
  long value_ = 0;
};

}  // namespace fix
