// --require-noalloc-file round trip: observe() is annotated (must pass
// the manifest check); drain() is exercised by the runtime zero-alloc
// windows in this imaginary repo but lost its annotation (must be
// reported missing).
#pragma once

#define DROPPKT_NOALLOC

namespace fix {

class Monitor {
 public:
  DROPPKT_NOALLOC void observe(int v) { last_ = v; }
  void drain() { last_ = 0; }

 private:
  int last_ = 0;
};

}  // namespace fix
