// Allowlist semantics: a token-specific entry suppresses exactly one
// justified site (warmup's bounded push_back); a token `*` entry declares
// a whole function cold and prunes traversal into its callees, so
// really_cold()'s allocation must not fire either. The unlisted
// to_string in leak() must still fire — the allowlist is per-site, not
// per-file.
#pragma once

#include <string>
#include <vector>

#define DROPPKT_NOALLOC

namespace fix {

inline std::string really_cold(int v) {
  return std::to_string(v);  // behind the pruned first_sight(): quiet
}

class Pool {
 public:
  DROPPKT_NOALLOC int intern(int v) {
    warmup(v);
    first_sight(v);
    return leak(v);
  }

 private:
  void warmup(int v) {
    table_.push_back(v);  // allowlisted by token: quiet
  }

  void first_sight(int v) {
    names_.push_back(really_cold(v));  // whole function exempt: quiet
  }

  int leak(int v) {
    return static_cast<int>(std::to_string(v).size());  // must fire
  }

  std::vector<int> table_;
  std::vector<std::string> names_;
};

}  // namespace fix
