// droppkt_top — live terminal dashboard over the droppkt-tm wire stream.
//
// A producer thread replays a deterministic incident-feed capture through
// a sharded IngestEngine + AlertPipeline and, at every capture marker,
// refreshes the engine gauges, snapshots the per-location QoE state, and
// ticks the IntervalStreamer. The main thread is a genuine wire consumer:
// it only ever reads what poll() delivers — it decodes droppkt-tm frames
// (directory, then interval frames) and renders everything from the
// decoded representation, exactly as an out-of-process dashboard would.
//
//   droppkt_top [--once] [--no-ansi] [--time-scale X] [--shards N]
//     --once        small feed, line-rate replay, one final render, exit
//     --no-ansi     never emit terminal clear escapes
//     --time-scale  feed-seconds per wall-second (default 240)
//     --shards      engine shard count (default 2)
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "alert/pipeline.hpp"
#include "core/dataset_builder.hpp"
#include "engine/engine.hpp"
#include "engine/feed.hpp"
#include "engine/replay.hpp"
#include "has/service_profile.hpp"
#include "telemetry/clock.hpp"
#include "telemetry/streamer.hpp"
#include "telemetry/wire.hpp"
#include "util/render.hpp"

namespace {

using namespace droppkt;

constexpr std::size_t kHistoryCap = 120;

struct DashState {
  // Resolved from the decoded directory frame.
  std::set<telemetry::MetricId> shard_records_ids;
  std::set<telemetry::MetricId> shard_sessions_ids;
  telemetry::MetricId ml_rows_id = 0;
  telemetry::MetricId open_alerts_id = 0;
  telemetry::MetricId tracked_locations_id = 0;
  telemetry::MetricId dropped_intervals_id = 0;
  bool have_directory = false;
  // Rolling interval history (one point per decoded interval frame).
  std::vector<double> records_per_s;
  std::vector<double> sessions_per_s;
  std::vector<double> ml_rows_per_s;
  std::map<std::string, std::vector<double>> location_sessions;
  telemetry::TmInterval last;
  std::uint64_t intervals = 0;
};

void push_capped(std::vector<double>& v, double x) {
  v.push_back(x);
  if (v.size() > kHistoryCap) v.erase(v.begin());
}

bool ends_with(const std::string& s, const char* suffix) {
  const std::size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

void take_directory(DashState& st,
                    const std::vector<telemetry::TmDirectoryEntry>& dir) {
  for (const auto& e : dir) {
    if (e.name.rfind("engine.shard", 0) == 0) {
      if (ends_with(e.name, ".records")) st.shard_records_ids.insert(e.id);
      if (ends_with(e.name, ".sessions")) st.shard_sessions_ids.insert(e.id);
    } else if (e.name == "ml.predictions") {
      st.ml_rows_id = e.id;
    } else if (e.name == "alert.open_alerts") {
      st.open_alerts_id = e.id;
    } else if (e.name == "alert.tracked_locations") {
      st.tracked_locations_id = e.id;
    } else if (e.name == "telemetry.dropped_intervals") {
      st.dropped_intervals_id = e.id;
    }
  }
  st.have_directory = true;
}

void take_interval(DashState& st, const telemetry::TmInterval& iv) {
  double secs = iv.seconds();
  if (secs <= 0.0) secs = 1e-9;
  std::uint64_t recs = 0;
  std::uint64_t sess = 0;
  for (const auto& [id, v] : iv.scalars) {
    if (st.shard_records_ids.count(id) != 0) recs += v;
    if (st.shard_sessions_ids.count(id) != 0) sess += v;
  }
  push_capped(st.records_per_s, static_cast<double>(recs) / secs);
  push_capped(st.sessions_per_s, static_cast<double>(sess) / secs);
  push_capped(st.ml_rows_per_s,
              static_cast<double>(iv.scalar(st.ml_rows_id)) / secs);
  for (const auto& loc : iv.locations) {
    auto& hist = st.location_sessions[loc.name];
    push_capped(hist, loc.effective_sessions);
  }
  st.last = iv;
  ++st.intervals;
}

void render(const DashState& st, bool ansi) {
  std::string out;
  char line[512];
  if (ansi) out += "\x1b[2J\x1b[H";
  std::snprintf(line, sizeof(line),
                "droppkt_top — interval #%" PRIu64 " (%.2fs), %" PRIu64
                " intervals decoded\n\n",
                st.last.seq, st.last.seconds(), st.intervals);
  out += line;

  util::TextTable totals({"metric", "per-second", "trend"});
  const auto rate_row = [&](const char* name, const std::vector<double>& h) {
    totals.add_row({name,
                    h.empty() ? "-" : util::format_fixed_or_general(h.back()),
                    util::sparkline(h, 48)});
  };
  rate_row("records processed", st.records_per_s);
  rate_row("sessions reported", st.sessions_per_s);
  rate_row("forest rows predicted", st.ml_rows_per_s);
  out += totals.render();
  std::snprintf(line, sizeof(line),
                "\nopen alerts: %" PRIu64 "   tracked locations: %" PRIu64
                "   dropped intervals: %" PRIu64 "\n\n",
                st.last.scalar(st.open_alerts_id),
                st.last.scalar(st.tracked_locations_id),
                st.last.scalar(st.dropped_intervals_id));
  out += line;

  if (!st.last.locations.empty()) {
    util::TextTable locs(
        {"location", "eff sessions", "low-QoE rate", "state",
         "classes L/M/H", "sessions trend"});
    for (const auto& loc : st.last.locations) {
      std::snprintf(line, sizeof(line), "[%.2f, %.2f]", loc.rate_low,
                    loc.rate_high);
      std::string classes = "-";
      if (!loc.class_counts.empty()) {
        classes.clear();
        for (std::size_t c = 0; c < loc.class_counts.size(); ++c) {
          if (c != 0) classes += "/";
          classes += std::to_string(loc.class_counts[c]);
        }
      }
      const auto hist = st.location_sessions.find(loc.name);
      locs.add_row({loc.name, util::fixed(loc.effective_sessions, 1), line,
                    loc.degraded ? "DEGRADED" : "ok", classes,
                    hist == st.location_sessions.end()
                        ? ""
                        : util::sparkline(hist->second, 24)});
    }
    out += locs.render();
  }
  std::fputs(out.c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  bool once = false;
  bool ansi = true;
  double time_scale = 240.0;
  std::size_t shards = 2;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--once") once = true;
    else if (a == "--no-ansi") ansi = false;
    else if (a == "--time-scale" && i + 1 < argc)
      time_scale = std::strtod(argv[++i], nullptr);
    else if (a == "--shards" && i + 1 < argc)
      shards = std::strtoull(argv[++i], nullptr, 10);
    else {
      std::fprintf(stderr,
                   "usage: droppkt_top [--once] [--no-ansi] "
                   "[--time-scale X] [--shards N]\n");
      return 2;
    }
  }
  if (once) ansi = false;

  std::printf("training estimator + generating incident feed...\n");
  core::DatasetConfig dcfg;
  dcfg.num_sessions = once ? 300 : 600;
  dcfg.seed = 41;
  core::QoeEstimator estimator;
  estimator.train(core::build_dataset(has::svc1_profile(), dcfg));

  engine::IncidentFeedConfig fcfg;
  fcfg.num_locations = once ? 3 : 6;
  fcfg.degraded_locations = once ? 1 : 2;
  fcfg.clients_per_location = once ? 4 : 6;
  fcfg.sessions_per_client = once ? 2 : 3;
  fcfg.incident_start_s = 600.0;
  fcfg.seed = 1000;
  const engine::Feed feed = engine::incident_feed(has::svc1_profile(), fcfg);
  const trace::FeedCapture capture = engine::capture_feed(feed);

  // Shared telemetry plane: the ml counter first, then the engine and the
  // alert sink register in the engine constructor, then the streamer
  // freezes the directory.
  telemetry::MetricRegistry registry;
  estimator.bind_telemetry(&registry.counter("ml.predictions", "rows"));

  alert::AlertPipelineConfig acfg;
  acfg.filter.hysteresis_k = 3;
  acfg.filter.min_confidence = 0.5;
  acfg.detector.half_life_s = 600.0;
  acfg.detector.min_effective_sessions = 4.0;
  acfg.detector.alert_rate = 0.35;
  acfg.manager.defaults.raise_rate = 0.35;
  acfg.manager.defaults.clear_rate = 0.2;
  alert::AlertPipeline alerts(acfg);

  engine::EngineConfig ecfg;
  ecfg.num_shards = shards;
  ecfg.monitor.client_idle_timeout_s = 120.0;
  ecfg.monitor.provisional_every = 4;
  ecfg.watermark_interval_s = 15.0;
  ecfg.alert_sink = &alerts;
  ecfg.registry = &registry;

  // Per-interval class distribution per location, fed by the session sink
  // and drained at each marker tick.
  std::mutex cls_mu;
  std::map<std::string, std::vector<std::uint64_t>> interval_classes;
  engine::IngestEngine eng(
      estimator,
      [&](const core::MonitoredSessionView& s) {
        const std::string loc = alert::default_location_of(s.client);
        const std::lock_guard<std::mutex> lock(cls_mu);
        auto& counts = interval_classes[loc];
        if (counts.size() < 3) counts.resize(3, 0);
        const auto cls = static_cast<std::size_t>(s.predicted_class);
        if (cls < counts.size()) ++counts[cls];
      },
      ecfg);
  telemetry::IntervalStreamer streamer(registry, telemetry::monotonic_clock());

  const auto do_tick = [&] {
    eng.refresh_gauges();
    std::vector<telemetry::TmLocation> locs;
    const auto snap = alerts.location_snapshot();
    {
      const std::lock_guard<std::mutex> lock(cls_mu);
      locs.reserve(snap.size());
      for (const auto& [name, w] : snap) {
        telemetry::TmLocation L;
        L.name = name;
        L.degraded = w.degraded;
        L.rate_low = w.interval.low;
        L.rate_high = w.interval.high;
        L.effective_sessions = w.effective_sessions;
        const auto it = interval_classes.find(name);
        if (it != interval_classes.end()) L.class_counts = it->second;
        locs.push_back(std::move(L));
      }
      interval_classes.clear();
    }
    streamer.tick(locs);
  };

  std::atomic<bool> done{false};
  std::thread producer([&] {
    engine::ReplayConfig rcfg;
    rcfg.time_scale = once ? 0.0 : time_scale;
    rcfg.on_marker = [&](const trace::CaptureEvent&) { do_tick(); };
    engine::replay_capture(capture, eng, rcfg);
    eng.finish();
    do_tick();  // tail interval after the final flush
    done.store(true, std::memory_order_release);
  });

  // The consumer side: decode the wire stream and render only what it
  // carries. Frames always arrive whole (the streamer queues complete
  // frames), so the buffer ends at a frame boundary after every poll.
  DashState st;
  std::vector<std::uint8_t> stream = streamer.header_frame();
  std::size_t offset = 0;
  telemetry::tm_decode_header(stream, offset);
  telemetry::TmFrame frame;
  while (telemetry::tm_decode_frame(stream, offset, frame)) {
    if (frame.kind == telemetry::TmFrame::Kind::kDirectory) {
      take_directory(st, frame.directory);
    }
  }
  for (;;) {
    const bool finished = done.load(std::memory_order_acquire);
    const std::size_t got = streamer.poll(stream);
    if (got > 0) {
      while (telemetry::tm_decode_frame(stream, offset, frame)) {
        if (frame.kind == telemetry::TmFrame::Kind::kDirectory) {
          take_directory(st, frame.directory);
        } else {
          take_interval(st, frame.interval);
        }
      }
      if (!once) render(st, ansi);
    }
    if (finished && got == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(once ? 5 : 50));
  }
  producer.join();
  render(st, ansi);
  std::printf("\nfeed drained: %" PRIu64 " intervals on the wire, %" PRIu64
              " dropped\n",
              st.intervals, streamer.dropped_intervals());
  return 0;
}
