// droppkt_replay — feed record/replay driver.
//
//   droppkt_replay record --out FILE [--locations N] [--degraded N]
//                         [--clients N] [--sessions N] [--seed S]
//                         [--incident-start S] [--marker-interval S]
//     Generate a deterministic incident feed and freeze it (records +
//     interval markers) to a DPFC capture file.
//
//   droppkt_replay run --in FILE [--shards N] [--time-scale X]
//                      [--batch N] [--alerts-out FILE]
//     Replay a capture through a fresh engine + alert pipeline at line
//     rate (default) or paced by --time-scale, then print the canonical
//     alert sequence. For a fixed capture the alert output is
//     byte-identical for ANY --shards, --batch and --time-scale — that
//     invariant is what the CI capture/replay round-trip gates.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "alert/pipeline.hpp"
#include "core/dataset_builder.hpp"
#include "engine/engine.hpp"
#include "engine/feed.hpp"
#include "engine/replay.hpp"
#include "has/service_profile.hpp"
#include "trace/capture.hpp"

namespace {

using namespace droppkt;

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: droppkt_replay record --out FILE [--locations N] "
               "[--degraded N] [--clients N] [--sessions N] [--seed S] "
               "[--incident-start S] [--marker-interval S]\n"
               "       droppkt_replay run --in FILE [--shards N] "
               "[--time-scale X] [--batch N] [--alerts-out FILE]\n");
  std::exit(2);
}

double arg_double(int argc, char** argv, int& i) {
  if (i + 1 >= argc) usage();
  return std::strtod(argv[++i], nullptr);
}

std::uint64_t arg_u64(int argc, char** argv, int& i) {
  if (i + 1 >= argc) usage();
  return std::strtoull(argv[++i], nullptr, 10);
}

std::string arg_str(int argc, char** argv, int& i) {
  if (i + 1 >= argc) usage();
  return argv[++i];
}

int cmd_record(int argc, char** argv) {
  std::string out;
  engine::IncidentFeedConfig fcfg;
  fcfg.num_locations = 6;
  fcfg.degraded_locations = 2;
  fcfg.clients_per_location = 6;
  fcfg.sessions_per_client = 3;
  fcfg.incident_start_s = 600.0;
  fcfg.seed = 1000;
  engine::CaptureConfig ccfg;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out") out = arg_str(argc, argv, i);
    else if (a == "--locations") fcfg.num_locations = arg_u64(argc, argv, i);
    else if (a == "--degraded")
      fcfg.degraded_locations = arg_u64(argc, argv, i);
    else if (a == "--clients")
      fcfg.clients_per_location = arg_u64(argc, argv, i);
    else if (a == "--sessions")
      fcfg.sessions_per_client = arg_u64(argc, argv, i);
    else if (a == "--seed") fcfg.seed = arg_u64(argc, argv, i);
    else if (a == "--incident-start")
      fcfg.incident_start_s = arg_double(argc, argv, i);
    else if (a == "--marker-interval")
      ccfg.marker_interval_s = arg_double(argc, argv, i);
    else usage();
  }
  if (out.empty()) usage();

  engine::IncidentGroundTruth truth;
  const engine::Feed feed =
      engine::incident_feed(has::svc1_profile(), fcfg, &truth);
  const trace::FeedCapture capture = engine::capture_feed(feed, ccfg);
  trace::write_feed_capture_file(capture, out);

  std::uint64_t markers = 0;
  for (const auto& ev : capture) {
    if (ev.kind == trace::CaptureEvent::Kind::kMarker) ++markers;
  }
  std::printf("recorded %zu records + %" PRIu64
              " markers (%zu sessions, incident at %.0fs across %zu/%zu "
              "locations) -> %s\n",
              feed.size(), markers, truth.sessions.size(),
              truth.incident_start_s, truth.degraded_locations.size(),
              truth.degraded_locations.size() +
                  truth.healthy_locations.size(),
              out.c_str());
  return 0;
}

int cmd_run(int argc, char** argv) {
  std::string in;
  std::string alerts_out;
  engine::ReplayConfig rcfg;
  std::size_t shards = 1;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--in") in = arg_str(argc, argv, i);
    else if (a == "--shards") shards = arg_u64(argc, argv, i);
    else if (a == "--time-scale") rcfg.time_scale = arg_double(argc, argv, i);
    else if (a == "--batch") rcfg.batch = arg_u64(argc, argv, i);
    else if (a == "--alerts-out") alerts_out = arg_str(argc, argv, i);
    else usage();
  }
  if (in.empty()) usage();

  const trace::FeedCapture capture = trace::read_feed_capture_file(in);

  // Fixed-seed estimator: every `run` of the same binary trains the
  // identical forest, so replay output depends only on the capture.
  core::DatasetConfig dcfg;
  dcfg.num_sessions = 600;
  dcfg.seed = 41;
  core::QoeEstimator estimator;
  estimator.train(core::build_dataset(has::svc1_profile(), dcfg));

  alert::AlertPipelineConfig acfg;
  acfg.filter.hysteresis_k = 3;
  acfg.filter.min_confidence = 0.5;
  acfg.detector.half_life_s = 600.0;
  acfg.detector.min_effective_sessions = 4.0;
  acfg.detector.alert_rate = 0.35;
  acfg.manager.defaults.raise_rate = 0.35;
  acfg.manager.defaults.clear_rate = 0.2;
  alert::AlertPipeline alerts(acfg);

  engine::EngineConfig ecfg;
  ecfg.num_shards = shards;
  ecfg.monitor.client_idle_timeout_s = 120.0;
  ecfg.monitor.provisional_every = 4;
  ecfg.watermark_interval_s = 15.0;
  ecfg.alert_sink = &alerts;
  engine::IngestEngine eng(
      estimator, [](const core::MonitoredSessionView&) {}, ecfg);

  const engine::ReplayStats rs = engine::replay_capture(capture, eng, rcfg);
  eng.finish();

  // Canonical alert sequence: one line per event, every float at full
  // round-trip precision — the byte-identity gate's comparison unit.
  std::string canon;
  char line[256];
  for (const auto& ev : alerts.log_snapshot()) {
    std::snprintf(line, sizeof(line), "%" PRIu64 " %s %s %.17g %.17g %.17g %.17g\n",
                  ev.id,
                  ev.kind == alert::AlertEvent::Kind::kRaised ? "RAISED"
                                                              : "CLEARED",
                  ev.location.c_str(), ev.time_s, ev.rate_low, ev.rate_high,
                  ev.effective_sessions);
    canon += line;
  }
  const auto snap = eng.stats();
  std::snprintf(line, sizeof(line),
                "final records=%" PRIu64 " sessions=%" PRIu64
                " provisionals=%" PRIu64 " transitions=%" PRIu64
                " raised=%" PRIu64 " cleared=%" PRIu64 "\n",
                snap.records_processed, snap.sessions_reported,
                snap.provisionals_reported, snap.verdict_transitions,
                snap.alerts_raised, snap.alerts_cleared);
  canon += line;

  if (!alerts_out.empty()) {
    std::FILE* f = std::fopen(alerts_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "droppkt_replay: cannot open %s\n",
                   alerts_out.c_str());
      return 1;
    }
    std::fwrite(canon.data(), 1, canon.size(), f);
    std::fclose(f);
  } else {
    std::fputs(canon.c_str(), stdout);
  }
  std::printf("replayed %" PRIu64 " records / %" PRIu64
              " markers spanning %.0fs of feed time in %.2fs wall "
              "(%zu shards, time scale %s)\n",
              rs.records, rs.markers, rs.last_s - rs.first_s,
              rs.wall_seconds, eng.num_shards(),
              rcfg.time_scale > 0.0
                  ? std::to_string(rcfg.time_scale).c_str()
                  : "line-rate");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string cmd = argv[1];
  if (cmd == "record") return cmd_record(argc, argv);
  if (cmd == "run") return cmd_run(argc, argv);
  usage();
}
