file(REMOVE_RECURSE
  "CMakeFiles/bench_intervals_ablation.dir/bench_intervals_ablation.cpp.o"
  "CMakeFiles/bench_intervals_ablation.dir/bench_intervals_ablation.cpp.o.d"
  "bench_intervals_ablation"
  "bench_intervals_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_intervals_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
