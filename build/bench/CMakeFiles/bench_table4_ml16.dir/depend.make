# Empty dependencies file for bench_table4_ml16.
# This may be replaced when dependencies are built.
