# Empty compiler generated dependencies file for bench_live_content.
# This may be replaced when dependencies are built.
