file(REMOVE_RECURSE
  "CMakeFiles/bench_live_content.dir/bench_live_content.cpp.o"
  "CMakeFiles/bench_live_content.dir/bench_live_content.cpp.o.d"
  "bench_live_content"
  "bench_live_content.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_live_content.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
