file(REMOVE_RECURSE
  "CMakeFiles/bench_sessionid_ablation.dir/bench_sessionid_ablation.cpp.o"
  "CMakeFiles/bench_sessionid_ablation.dir/bench_sessionid_ablation.cpp.o.d"
  "bench_sessionid_ablation"
  "bench_sessionid_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sessionid_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
