# Empty compiler generated dependencies file for bench_sessionid_ablation.
# This may be replaced when dependencies are built.
