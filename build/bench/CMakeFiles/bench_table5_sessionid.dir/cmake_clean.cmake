file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_sessionid.dir/bench_table5_sessionid.cpp.o"
  "CMakeFiles/bench_table5_sessionid.dir/bench_table5_sessionid.cpp.o.d"
  "bench_table5_sessionid"
  "bench_table5_sessionid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_sessionid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
