# Empty dependencies file for bench_table5_sessionid.
# This may be replaced when dependencies are built.
