file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_transactions.dir/bench_fig2_transactions.cpp.o"
  "CMakeFiles/bench_fig2_transactions.dir/bench_fig2_transactions.cpp.o.d"
  "bench_fig2_transactions"
  "bench_fig2_transactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_transactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
