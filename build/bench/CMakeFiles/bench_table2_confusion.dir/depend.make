# Empty dependencies file for bench_table2_confusion.
# This may be replaced when dependencies are built.
