file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_confusion.dir/bench_table2_confusion.cpp.o"
  "CMakeFiles/bench_table2_confusion.dir/bench_table2_confusion.cpp.o.d"
  "bench_table2_confusion"
  "bench_table2_confusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_confusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
