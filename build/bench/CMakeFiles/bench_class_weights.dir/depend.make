# Empty dependencies file for bench_class_weights.
# This may be replaced when dependencies are built.
