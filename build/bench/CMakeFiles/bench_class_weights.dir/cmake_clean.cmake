file(REMOVE_RECURSE
  "CMakeFiles/bench_class_weights.dir/bench_class_weights.cpp.o"
  "CMakeFiles/bench_class_weights.dir/bench_class_weights.cpp.o.d"
  "bench_class_weights"
  "bench_class_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_class_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
