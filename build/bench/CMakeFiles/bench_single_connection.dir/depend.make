# Empty dependencies file for bench_single_connection.
# This may be replaced when dependencies are built.
