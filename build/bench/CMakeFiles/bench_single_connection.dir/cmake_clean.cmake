file(REMOVE_RECURSE
  "CMakeFiles/bench_single_connection.dir/bench_single_connection.cpp.o"
  "CMakeFiles/bench_single_connection.dir/bench_single_connection.cpp.o.d"
  "bench_single_connection"
  "bench_single_connection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_single_connection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
