file(REMOVE_RECURSE
  "CMakeFiles/bench_flow_granularity.dir/bench_flow_granularity.cpp.o"
  "CMakeFiles/bench_flow_granularity.dir/bench_flow_granularity.cpp.o.d"
  "bench_flow_granularity"
  "bench_flow_granularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_flow_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
