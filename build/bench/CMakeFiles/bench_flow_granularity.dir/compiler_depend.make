# Empty compiler generated dependencies file for bench_flow_granularity.
# This may be replaced when dependencies are built.
