file(REMOVE_RECURSE
  "CMakeFiles/bench_abr_drift.dir/bench_abr_drift.cpp.o"
  "CMakeFiles/bench_abr_drift.dir/bench_abr_drift.cpp.o.d"
  "bench_abr_drift"
  "bench_abr_drift.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abr_drift.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
