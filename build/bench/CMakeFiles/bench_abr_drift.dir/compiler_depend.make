# Empty compiler generated dependencies file for bench_abr_drift.
# This may be replaced when dependencies are built.
