file(REMOVE_RECURSE
  "CMakeFiles/bench_forest_ablation.dir/bench_forest_ablation.cpp.o"
  "CMakeFiles/bench_forest_ablation.dir/bench_forest_ablation.cpp.o.d"
  "bench_forest_ablation"
  "bench_forest_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_forest_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
