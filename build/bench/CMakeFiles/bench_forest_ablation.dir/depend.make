# Empty dependencies file for bench_forest_ablation.
# This may be replaced when dependencies are built.
