file(REMOVE_RECURSE
  "CMakeFiles/bench_interactions.dir/bench_interactions.cpp.o"
  "CMakeFiles/bench_interactions.dir/bench_interactions.cpp.o.d"
  "bench_interactions"
  "bench_interactions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interactions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
