file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_matched.dir/bench_fig7_matched.cpp.o"
  "CMakeFiles/bench_fig7_matched.dir/bench_fig7_matched.cpp.o.d"
  "bench_fig7_matched"
  "bench_fig7_matched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_matched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
