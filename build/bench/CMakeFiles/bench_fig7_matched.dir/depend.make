# Empty dependencies file for bench_fig7_matched.
# This may be replaced when dependencies are built.
