# Empty dependencies file for bench_fig4_qoe_distribution.
# This may be replaced when dependencies are built.
