file(REMOVE_RECURSE
  "CMakeFiles/bench_stats_ablation.dir/bench_stats_ablation.cpp.o"
  "CMakeFiles/bench_stats_ablation.dir/bench_stats_ablation.cpp.o.d"
  "bench_stats_ablation"
  "bench_stats_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stats_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
