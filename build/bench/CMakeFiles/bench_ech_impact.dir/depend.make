# Empty dependencies file for bench_ech_impact.
# This may be replaced when dependencies are built.
