file(REMOVE_RECURSE
  "CMakeFiles/bench_ech_impact.dir/bench_ech_impact.cpp.o"
  "CMakeFiles/bench_ech_impact.dir/bench_ech_impact.cpp.o.d"
  "bench_ech_impact"
  "bench_ech_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ech_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
