# Empty dependencies file for bench_quic_coverage.
# This may be replaced when dependencies are built.
