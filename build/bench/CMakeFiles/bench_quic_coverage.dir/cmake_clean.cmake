file(REMOVE_RECURSE
  "CMakeFiles/bench_quic_coverage.dir/bench_quic_coverage.cpp.o"
  "CMakeFiles/bench_quic_coverage.dir/bench_quic_coverage.cpp.o.d"
  "bench_quic_coverage"
  "bench_quic_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quic_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
