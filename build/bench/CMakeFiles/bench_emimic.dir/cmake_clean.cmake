file(REMOVE_RECURSE
  "CMakeFiles/bench_emimic.dir/bench_emimic.cpp.o"
  "CMakeFiles/bench_emimic.dir/bench_emimic.cpp.o.d"
  "bench_emimic"
  "bench_emimic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_emimic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
