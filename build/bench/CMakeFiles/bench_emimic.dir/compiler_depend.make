# Empty compiler generated dependencies file for bench_emimic.
# This may be replaced when dependencies are built.
