# Empty dependencies file for bench_models_ablation.
# This may be replaced when dependencies are built.
