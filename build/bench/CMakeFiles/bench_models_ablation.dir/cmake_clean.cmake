file(REMOVE_RECURSE
  "CMakeFiles/bench_models_ablation.dir/bench_models_ablation.cpp.o"
  "CMakeFiles/bench_models_ablation.dir/bench_models_ablation.cpp.o.d"
  "bench_models_ablation"
  "bench_models_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_models_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
