file(REMOVE_RECURSE
  "libdroppkt_net.a"
)
