file(REMOVE_RECURSE
  "CMakeFiles/droppkt_net.dir/bandwidth_trace.cpp.o"
  "CMakeFiles/droppkt_net.dir/bandwidth_trace.cpp.o.d"
  "CMakeFiles/droppkt_net.dir/link_model.cpp.o"
  "CMakeFiles/droppkt_net.dir/link_model.cpp.o.d"
  "CMakeFiles/droppkt_net.dir/trace_generator.cpp.o"
  "CMakeFiles/droppkt_net.dir/trace_generator.cpp.o.d"
  "libdroppkt_net.a"
  "libdroppkt_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droppkt_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
