# Empty compiler generated dependencies file for droppkt_net.
# This may be replaced when dependencies are built.
