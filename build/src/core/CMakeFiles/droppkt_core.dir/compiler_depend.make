# Empty compiler generated dependencies file for droppkt_core.
# This may be replaced when dependencies are built.
