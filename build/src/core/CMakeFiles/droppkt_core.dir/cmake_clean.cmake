file(REMOVE_RECURSE
  "CMakeFiles/droppkt_core.dir/aggregator.cpp.o"
  "CMakeFiles/droppkt_core.dir/aggregator.cpp.o.d"
  "CMakeFiles/droppkt_core.dir/dataset_builder.cpp.o"
  "CMakeFiles/droppkt_core.dir/dataset_builder.cpp.o.d"
  "CMakeFiles/droppkt_core.dir/emimic.cpp.o"
  "CMakeFiles/droppkt_core.dir/emimic.cpp.o.d"
  "CMakeFiles/droppkt_core.dir/estimator.cpp.o"
  "CMakeFiles/droppkt_core.dir/estimator.cpp.o.d"
  "CMakeFiles/droppkt_core.dir/flow_features.cpp.o"
  "CMakeFiles/droppkt_core.dir/flow_features.cpp.o.d"
  "CMakeFiles/droppkt_core.dir/ml16_features.cpp.o"
  "CMakeFiles/droppkt_core.dir/ml16_features.cpp.o.d"
  "CMakeFiles/droppkt_core.dir/monitor.cpp.o"
  "CMakeFiles/droppkt_core.dir/monitor.cpp.o.d"
  "CMakeFiles/droppkt_core.dir/pipeline.cpp.o"
  "CMakeFiles/droppkt_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/droppkt_core.dir/qoe_labels.cpp.o"
  "CMakeFiles/droppkt_core.dir/qoe_labels.cpp.o.d"
  "CMakeFiles/droppkt_core.dir/session_id.cpp.o"
  "CMakeFiles/droppkt_core.dir/session_id.cpp.o.d"
  "CMakeFiles/droppkt_core.dir/tls_features.cpp.o"
  "CMakeFiles/droppkt_core.dir/tls_features.cpp.o.d"
  "CMakeFiles/droppkt_core.dir/windowed.cpp.o"
  "CMakeFiles/droppkt_core.dir/windowed.cpp.o.d"
  "libdroppkt_core.a"
  "libdroppkt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droppkt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
