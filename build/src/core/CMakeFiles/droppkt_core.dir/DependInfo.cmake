
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregator.cpp" "src/core/CMakeFiles/droppkt_core.dir/aggregator.cpp.o" "gcc" "src/core/CMakeFiles/droppkt_core.dir/aggregator.cpp.o.d"
  "/root/repo/src/core/dataset_builder.cpp" "src/core/CMakeFiles/droppkt_core.dir/dataset_builder.cpp.o" "gcc" "src/core/CMakeFiles/droppkt_core.dir/dataset_builder.cpp.o.d"
  "/root/repo/src/core/emimic.cpp" "src/core/CMakeFiles/droppkt_core.dir/emimic.cpp.o" "gcc" "src/core/CMakeFiles/droppkt_core.dir/emimic.cpp.o.d"
  "/root/repo/src/core/estimator.cpp" "src/core/CMakeFiles/droppkt_core.dir/estimator.cpp.o" "gcc" "src/core/CMakeFiles/droppkt_core.dir/estimator.cpp.o.d"
  "/root/repo/src/core/flow_features.cpp" "src/core/CMakeFiles/droppkt_core.dir/flow_features.cpp.o" "gcc" "src/core/CMakeFiles/droppkt_core.dir/flow_features.cpp.o.d"
  "/root/repo/src/core/ml16_features.cpp" "src/core/CMakeFiles/droppkt_core.dir/ml16_features.cpp.o" "gcc" "src/core/CMakeFiles/droppkt_core.dir/ml16_features.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/droppkt_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/droppkt_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/droppkt_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/droppkt_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/qoe_labels.cpp" "src/core/CMakeFiles/droppkt_core.dir/qoe_labels.cpp.o" "gcc" "src/core/CMakeFiles/droppkt_core.dir/qoe_labels.cpp.o.d"
  "/root/repo/src/core/session_id.cpp" "src/core/CMakeFiles/droppkt_core.dir/session_id.cpp.o" "gcc" "src/core/CMakeFiles/droppkt_core.dir/session_id.cpp.o.d"
  "/root/repo/src/core/tls_features.cpp" "src/core/CMakeFiles/droppkt_core.dir/tls_features.cpp.o" "gcc" "src/core/CMakeFiles/droppkt_core.dir/tls_features.cpp.o.d"
  "/root/repo/src/core/windowed.cpp" "src/core/CMakeFiles/droppkt_core.dir/windowed.cpp.o" "gcc" "src/core/CMakeFiles/droppkt_core.dir/windowed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/trace/CMakeFiles/droppkt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/has/CMakeFiles/droppkt_has.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/droppkt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/droppkt_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/droppkt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
