file(REMOVE_RECURSE
  "libdroppkt_core.a"
)
