file(REMOVE_RECURSE
  "libdroppkt_ml.a"
)
