# Empty compiler generated dependencies file for droppkt_ml.
# This may be replaced when dependencies are built.
