file(REMOVE_RECURSE
  "CMakeFiles/droppkt_ml.dir/baseline.cpp.o"
  "CMakeFiles/droppkt_ml.dir/baseline.cpp.o.d"
  "CMakeFiles/droppkt_ml.dir/classifier.cpp.o"
  "CMakeFiles/droppkt_ml.dir/classifier.cpp.o.d"
  "CMakeFiles/droppkt_ml.dir/cross_validation.cpp.o"
  "CMakeFiles/droppkt_ml.dir/cross_validation.cpp.o.d"
  "CMakeFiles/droppkt_ml.dir/dataset.cpp.o"
  "CMakeFiles/droppkt_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/droppkt_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/droppkt_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/droppkt_ml.dir/gbt.cpp.o"
  "CMakeFiles/droppkt_ml.dir/gbt.cpp.o.d"
  "CMakeFiles/droppkt_ml.dir/knn.cpp.o"
  "CMakeFiles/droppkt_ml.dir/knn.cpp.o.d"
  "CMakeFiles/droppkt_ml.dir/metrics.cpp.o"
  "CMakeFiles/droppkt_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/droppkt_ml.dir/mlp.cpp.o"
  "CMakeFiles/droppkt_ml.dir/mlp.cpp.o.d"
  "CMakeFiles/droppkt_ml.dir/preprocess.cpp.o"
  "CMakeFiles/droppkt_ml.dir/preprocess.cpp.o.d"
  "CMakeFiles/droppkt_ml.dir/random_forest.cpp.o"
  "CMakeFiles/droppkt_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/droppkt_ml.dir/svm.cpp.o"
  "CMakeFiles/droppkt_ml.dir/svm.cpp.o.d"
  "libdroppkt_ml.a"
  "libdroppkt_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droppkt_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
