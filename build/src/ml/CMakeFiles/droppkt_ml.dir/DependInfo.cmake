
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/baseline.cpp" "src/ml/CMakeFiles/droppkt_ml.dir/baseline.cpp.o" "gcc" "src/ml/CMakeFiles/droppkt_ml.dir/baseline.cpp.o.d"
  "/root/repo/src/ml/classifier.cpp" "src/ml/CMakeFiles/droppkt_ml.dir/classifier.cpp.o" "gcc" "src/ml/CMakeFiles/droppkt_ml.dir/classifier.cpp.o.d"
  "/root/repo/src/ml/cross_validation.cpp" "src/ml/CMakeFiles/droppkt_ml.dir/cross_validation.cpp.o" "gcc" "src/ml/CMakeFiles/droppkt_ml.dir/cross_validation.cpp.o.d"
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/droppkt_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/droppkt_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/droppkt_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/droppkt_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/gbt.cpp" "src/ml/CMakeFiles/droppkt_ml.dir/gbt.cpp.o" "gcc" "src/ml/CMakeFiles/droppkt_ml.dir/gbt.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/droppkt_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/droppkt_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/droppkt_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/droppkt_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/mlp.cpp" "src/ml/CMakeFiles/droppkt_ml.dir/mlp.cpp.o" "gcc" "src/ml/CMakeFiles/droppkt_ml.dir/mlp.cpp.o.d"
  "/root/repo/src/ml/preprocess.cpp" "src/ml/CMakeFiles/droppkt_ml.dir/preprocess.cpp.o" "gcc" "src/ml/CMakeFiles/droppkt_ml.dir/preprocess.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/droppkt_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/droppkt_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/svm.cpp" "src/ml/CMakeFiles/droppkt_ml.dir/svm.cpp.o" "gcc" "src/ml/CMakeFiles/droppkt_ml.dir/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/droppkt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
