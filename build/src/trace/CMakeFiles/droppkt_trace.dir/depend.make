# Empty dependencies file for droppkt_trace.
# This may be replaced when dependencies are built.
