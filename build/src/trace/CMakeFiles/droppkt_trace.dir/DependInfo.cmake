
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/connection_manager.cpp" "src/trace/CMakeFiles/droppkt_trace.dir/connection_manager.cpp.o" "gcc" "src/trace/CMakeFiles/droppkt_trace.dir/connection_manager.cpp.o.d"
  "/root/repo/src/trace/flow_export.cpp" "src/trace/CMakeFiles/droppkt_trace.dir/flow_export.cpp.o" "gcc" "src/trace/CMakeFiles/droppkt_trace.dir/flow_export.cpp.o.d"
  "/root/repo/src/trace/packet_generator.cpp" "src/trace/CMakeFiles/droppkt_trace.dir/packet_generator.cpp.o" "gcc" "src/trace/CMakeFiles/droppkt_trace.dir/packet_generator.cpp.o.d"
  "/root/repo/src/trace/serialize.cpp" "src/trace/CMakeFiles/droppkt_trace.dir/serialize.cpp.o" "gcc" "src/trace/CMakeFiles/droppkt_trace.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/has/CMakeFiles/droppkt_has.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/droppkt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/droppkt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
