file(REMOVE_RECURSE
  "libdroppkt_trace.a"
)
