file(REMOVE_RECURSE
  "CMakeFiles/droppkt_trace.dir/connection_manager.cpp.o"
  "CMakeFiles/droppkt_trace.dir/connection_manager.cpp.o.d"
  "CMakeFiles/droppkt_trace.dir/flow_export.cpp.o"
  "CMakeFiles/droppkt_trace.dir/flow_export.cpp.o.d"
  "CMakeFiles/droppkt_trace.dir/packet_generator.cpp.o"
  "CMakeFiles/droppkt_trace.dir/packet_generator.cpp.o.d"
  "CMakeFiles/droppkt_trace.dir/serialize.cpp.o"
  "CMakeFiles/droppkt_trace.dir/serialize.cpp.o.d"
  "libdroppkt_trace.a"
  "libdroppkt_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droppkt_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
