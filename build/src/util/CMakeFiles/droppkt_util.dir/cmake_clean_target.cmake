file(REMOVE_RECURSE
  "libdroppkt_util.a"
)
