# Empty dependencies file for droppkt_util.
# This may be replaced when dependencies are built.
