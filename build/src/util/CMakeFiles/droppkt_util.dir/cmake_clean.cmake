file(REMOVE_RECURSE
  "CMakeFiles/droppkt_util.dir/csv.cpp.o"
  "CMakeFiles/droppkt_util.dir/csv.cpp.o.d"
  "CMakeFiles/droppkt_util.dir/render.cpp.o"
  "CMakeFiles/droppkt_util.dir/render.cpp.o.d"
  "CMakeFiles/droppkt_util.dir/rng.cpp.o"
  "CMakeFiles/droppkt_util.dir/rng.cpp.o.d"
  "CMakeFiles/droppkt_util.dir/stats.cpp.o"
  "CMakeFiles/droppkt_util.dir/stats.cpp.o.d"
  "libdroppkt_util.a"
  "libdroppkt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droppkt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
