
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/has/abr.cpp" "src/has/CMakeFiles/droppkt_has.dir/abr.cpp.o" "gcc" "src/has/CMakeFiles/droppkt_has.dir/abr.cpp.o.d"
  "/root/repo/src/has/http_transaction.cpp" "src/has/CMakeFiles/droppkt_has.dir/http_transaction.cpp.o" "gcc" "src/has/CMakeFiles/droppkt_has.dir/http_transaction.cpp.o.d"
  "/root/repo/src/has/player.cpp" "src/has/CMakeFiles/droppkt_has.dir/player.cpp.o" "gcc" "src/has/CMakeFiles/droppkt_has.dir/player.cpp.o.d"
  "/root/repo/src/has/quality_ladder.cpp" "src/has/CMakeFiles/droppkt_has.dir/quality_ladder.cpp.o" "gcc" "src/has/CMakeFiles/droppkt_has.dir/quality_ladder.cpp.o.d"
  "/root/repo/src/has/service_profile.cpp" "src/has/CMakeFiles/droppkt_has.dir/service_profile.cpp.o" "gcc" "src/has/CMakeFiles/droppkt_has.dir/service_profile.cpp.o.d"
  "/root/repo/src/has/video_catalog.cpp" "src/has/CMakeFiles/droppkt_has.dir/video_catalog.cpp.o" "gcc" "src/has/CMakeFiles/droppkt_has.dir/video_catalog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/droppkt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/droppkt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
