file(REMOVE_RECURSE
  "CMakeFiles/droppkt_has.dir/abr.cpp.o"
  "CMakeFiles/droppkt_has.dir/abr.cpp.o.d"
  "CMakeFiles/droppkt_has.dir/http_transaction.cpp.o"
  "CMakeFiles/droppkt_has.dir/http_transaction.cpp.o.d"
  "CMakeFiles/droppkt_has.dir/player.cpp.o"
  "CMakeFiles/droppkt_has.dir/player.cpp.o.d"
  "CMakeFiles/droppkt_has.dir/quality_ladder.cpp.o"
  "CMakeFiles/droppkt_has.dir/quality_ladder.cpp.o.d"
  "CMakeFiles/droppkt_has.dir/service_profile.cpp.o"
  "CMakeFiles/droppkt_has.dir/service_profile.cpp.o.d"
  "CMakeFiles/droppkt_has.dir/video_catalog.cpp.o"
  "CMakeFiles/droppkt_has.dir/video_catalog.cpp.o.d"
  "libdroppkt_has.a"
  "libdroppkt_has.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/droppkt_has.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
