file(REMOVE_RECURSE
  "libdroppkt_has.a"
)
