# Empty compiler generated dependencies file for droppkt_has.
# This may be replaced when dependencies are built.
