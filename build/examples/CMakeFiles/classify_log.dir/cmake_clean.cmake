file(REMOVE_RECURSE
  "CMakeFiles/classify_log.dir/classify_log.cpp.o"
  "CMakeFiles/classify_log.dir/classify_log.cpp.o.d"
  "classify_log"
  "classify_log.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classify_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
