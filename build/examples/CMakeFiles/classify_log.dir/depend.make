# Empty dependencies file for classify_log.
# This may be replaced when dependencies are built.
