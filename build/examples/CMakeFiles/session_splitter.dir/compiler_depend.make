# Empty compiler generated dependencies file for session_splitter.
# This may be replaced when dependencies are built.
