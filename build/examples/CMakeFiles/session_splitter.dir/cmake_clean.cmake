file(REMOVE_RECURSE
  "CMakeFiles/session_splitter.dir/session_splitter.cpp.o"
  "CMakeFiles/session_splitter.dir/session_splitter.cpp.o.d"
  "session_splitter"
  "session_splitter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_splitter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
