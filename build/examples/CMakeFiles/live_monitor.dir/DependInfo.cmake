
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/live_monitor.cpp" "examples/CMakeFiles/live_monitor.dir/live_monitor.cpp.o" "gcc" "examples/CMakeFiles/live_monitor.dir/live_monitor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/droppkt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/droppkt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/has/CMakeFiles/droppkt_has.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/droppkt_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/droppkt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/droppkt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
