file(REMOVE_RECURSE
  "CMakeFiles/test_has.dir/has/abr_test.cpp.o"
  "CMakeFiles/test_has.dir/has/abr_test.cpp.o.d"
  "CMakeFiles/test_has.dir/has/interactions_test.cpp.o"
  "CMakeFiles/test_has.dir/has/interactions_test.cpp.o.d"
  "CMakeFiles/test_has.dir/has/live_profile_test.cpp.o"
  "CMakeFiles/test_has.dir/has/live_profile_test.cpp.o.d"
  "CMakeFiles/test_has.dir/has/player_test.cpp.o"
  "CMakeFiles/test_has.dir/has/player_test.cpp.o.d"
  "CMakeFiles/test_has.dir/has/quality_ladder_test.cpp.o"
  "CMakeFiles/test_has.dir/has/quality_ladder_test.cpp.o.d"
  "CMakeFiles/test_has.dir/has/service_profile_test.cpp.o"
  "CMakeFiles/test_has.dir/has/service_profile_test.cpp.o.d"
  "CMakeFiles/test_has.dir/has/video_catalog_test.cpp.o"
  "CMakeFiles/test_has.dir/has/video_catalog_test.cpp.o.d"
  "test_has"
  "test_has.pdb"
  "test_has[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_has.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
