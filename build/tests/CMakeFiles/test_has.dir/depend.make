# Empty dependencies file for test_has.
# This may be replaced when dependencies are built.
