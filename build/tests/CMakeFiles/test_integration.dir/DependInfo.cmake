
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/pipeline_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/pipeline_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/pipeline_test.cpp.o.d"
  "/root/repo/tests/integration/properties_test.cpp" "tests/CMakeFiles/test_integration.dir/integration/properties_test.cpp.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/properties_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/droppkt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/droppkt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/has/CMakeFiles/droppkt_has.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/droppkt_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/droppkt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/droppkt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
