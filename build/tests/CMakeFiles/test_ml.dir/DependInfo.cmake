
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/baseline_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/baseline_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/baseline_test.cpp.o.d"
  "/root/repo/tests/ml/class_weights_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/class_weights_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/class_weights_test.cpp.o.d"
  "/root/repo/tests/ml/cross_validation_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/cross_validation_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/cross_validation_test.cpp.o.d"
  "/root/repo/tests/ml/dataset_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/dataset_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/dataset_test.cpp.o.d"
  "/root/repo/tests/ml/decision_tree_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/decision_tree_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/decision_tree_test.cpp.o.d"
  "/root/repo/tests/ml/metrics_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/metrics_test.cpp.o.d"
  "/root/repo/tests/ml/models_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/models_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/models_test.cpp.o.d"
  "/root/repo/tests/ml/random_forest_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/random_forest_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/random_forest_test.cpp.o.d"
  "/root/repo/tests/ml/serialization_test.cpp" "tests/CMakeFiles/test_ml.dir/ml/serialization_test.cpp.o" "gcc" "tests/CMakeFiles/test_ml.dir/ml/serialization_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/droppkt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/droppkt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/has/CMakeFiles/droppkt_has.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/droppkt_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/droppkt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/droppkt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
