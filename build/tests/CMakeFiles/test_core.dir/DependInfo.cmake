
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/aggregator_test.cpp" "tests/CMakeFiles/test_core.dir/core/aggregator_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/aggregator_test.cpp.o.d"
  "/root/repo/tests/core/dataset_builder_test.cpp" "tests/CMakeFiles/test_core.dir/core/dataset_builder_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/dataset_builder_test.cpp.o.d"
  "/root/repo/tests/core/emimic_test.cpp" "tests/CMakeFiles/test_core.dir/core/emimic_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/emimic_test.cpp.o.d"
  "/root/repo/tests/core/estimator_persistence_test.cpp" "tests/CMakeFiles/test_core.dir/core/estimator_persistence_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/estimator_persistence_test.cpp.o.d"
  "/root/repo/tests/core/estimator_test.cpp" "tests/CMakeFiles/test_core.dir/core/estimator_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/estimator_test.cpp.o.d"
  "/root/repo/tests/core/flow_features_test.cpp" "tests/CMakeFiles/test_core.dir/core/flow_features_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/flow_features_test.cpp.o.d"
  "/root/repo/tests/core/ml16_features_test.cpp" "tests/CMakeFiles/test_core.dir/core/ml16_features_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/ml16_features_test.cpp.o.d"
  "/root/repo/tests/core/monitor_test.cpp" "tests/CMakeFiles/test_core.dir/core/monitor_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/monitor_test.cpp.o.d"
  "/root/repo/tests/core/qoe_labels_test.cpp" "tests/CMakeFiles/test_core.dir/core/qoe_labels_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/qoe_labels_test.cpp.o.d"
  "/root/repo/tests/core/session_id_test.cpp" "tests/CMakeFiles/test_core.dir/core/session_id_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/session_id_test.cpp.o.d"
  "/root/repo/tests/core/tls_features_test.cpp" "tests/CMakeFiles/test_core.dir/core/tls_features_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/tls_features_test.cpp.o.d"
  "/root/repo/tests/core/truncate_test.cpp" "tests/CMakeFiles/test_core.dir/core/truncate_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/truncate_test.cpp.o.d"
  "/root/repo/tests/core/windowed_test.cpp" "tests/CMakeFiles/test_core.dir/core/windowed_test.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/windowed_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/droppkt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/droppkt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/has/CMakeFiles/droppkt_has.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/droppkt_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/droppkt_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/droppkt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
