file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/aggregator_test.cpp.o"
  "CMakeFiles/test_core.dir/core/aggregator_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/dataset_builder_test.cpp.o"
  "CMakeFiles/test_core.dir/core/dataset_builder_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/emimic_test.cpp.o"
  "CMakeFiles/test_core.dir/core/emimic_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/estimator_persistence_test.cpp.o"
  "CMakeFiles/test_core.dir/core/estimator_persistence_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/estimator_test.cpp.o"
  "CMakeFiles/test_core.dir/core/estimator_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/flow_features_test.cpp.o"
  "CMakeFiles/test_core.dir/core/flow_features_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/ml16_features_test.cpp.o"
  "CMakeFiles/test_core.dir/core/ml16_features_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/monitor_test.cpp.o"
  "CMakeFiles/test_core.dir/core/monitor_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/qoe_labels_test.cpp.o"
  "CMakeFiles/test_core.dir/core/qoe_labels_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/session_id_test.cpp.o"
  "CMakeFiles/test_core.dir/core/session_id_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/tls_features_test.cpp.o"
  "CMakeFiles/test_core.dir/core/tls_features_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/truncate_test.cpp.o"
  "CMakeFiles/test_core.dir/core/truncate_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/windowed_test.cpp.o"
  "CMakeFiles/test_core.dir/core/windowed_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
