// Sharded live monitoring: the deployment-scale successor to
// live_monitor. The same interleaved multi-subscriber proxy feed is
// drained by the IngestEngine — clients hashed across shard workers, each
// running its own StreamingMonitor behind a lock-free mailbox — instead
// of one single-threaded loop. Session results are identical to the
// single-threaded run; only the draining parallelizes.
#include <atomic>
#include <cstdio>
#include <mutex>

#include "core/dataset_builder.hpp"
#include "engine/engine.hpp"
#include "engine/feed.hpp"

int main() {
  using namespace droppkt;

  std::printf("Training estimator...\n");
  core::DatasetConfig cfg;
  cfg.num_sessions = 600;
  cfg.seed = 41;
  core::QoeEstimator estimator;
  estimator.train(core::build_dataset(has::svc1_profile(), cfg));

  // The proxy feed: 24 subscribers, each streaming 4 back-to-back videos,
  // interleaved in global time order.
  std::size_t true_sessions = 0;
  const engine::Feed feed =
      engine::simulated_feed(has::svc1_profile(), 24, 4, /*seed=*/1000,
                             &true_sessions);
  std::printf("Proxy feed: %zu TLS records from 24 subscribers "
              "(%zu true sessions)\n\n", feed.size(), true_sessions);

  engine::EngineConfig ecfg;
  ecfg.num_shards = 4;
  ecfg.monitor.client_idle_timeout_s = 120.0;
  ecfg.monitor.provisional_every = 16;  // in-flight estimate cadence
  ecfg.watermark_interval_s = 30.0;

  std::mutex mu;
  int class_counts[3] = {0, 0, 0};
  std::atomic<std::size_t> provisional_low{0};
  engine::IngestEngine eng(
      estimator,
      [&](const core::MonitoredSession& s) {
        const std::lock_guard<std::mutex> lock(mu);
        ++class_counts[s.predicted_class];
        std::printf("  [%7.1fs] %-10s session ended: %3zu txns, QoE %s\n",
                    s.end_s, s.client.c_str(), s.transactions.size(),
                    estimator.class_name(s.predicted_class).c_str());
      },
      [&](const core::ProvisionalEstimate& p) {
        // Mid-session screening: count clients already looking degraded
        // before their session closes (an alerting layer would key off
        // these instead of waiting for the idle timeout).
        if (p.predicted_class == 0) ++provisional_low;
      },
      ecfg);

  for (const auto& r : feed) eng.ingest(r.client, r.txn);
  eng.finish();

  const auto snap = eng.stats();
  std::printf("\nEngine statistics (%zu shards):\n%s\n", eng.num_shards(),
              snap.to_string().c_str());
  std::printf("Monitoring window summary: %llu sessions reported (%zu true)\n",
              static_cast<unsigned long long>(eng.sessions_reported()),
              true_sessions);
  std::printf("  low: %d   medium: %d   high: %d\n", class_counts[0],
              class_counts[1], class_counts[2]);
  std::printf("In-flight screening: %zu provisional low-QoE estimates "
              "surfaced before session close\n", provisional_low.load());
  std::printf("\nSame session set as the single-threaded live_monitor loop —\n"
              "sharding parallelizes the drain without changing results.\n");
  return 0;
}
