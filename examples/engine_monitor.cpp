// Sharded live monitoring with operator alerting: the deployment-scale
// successor to live_monitor. An interleaved multi-subscriber proxy feed —
// with a ground-truth incident injected at two cells — is drained by the
// IngestEngine (clients hashed across shard workers, each running its own
// StreamingMonitor behind a lock-free mailbox), while an
// alert::AlertPipeline attached as the engine's AlertSink turns the
// per-session verdict stream into location-level incidents: hysteresis
// over provisional flips, a decaying per-location window with a Wilson
// credibility test, and raise/clear lifecycle with cooldown. The alert
// sequence is deterministic: re-run with any shard count and every event
// is bit-identical.
#include <atomic>
#include <cstdio>
#include <mutex>
#include <vector>

#include "alert/pipeline.hpp"
#include "core/dataset_builder.hpp"
#include "engine/engine.hpp"
#include "engine/feed.hpp"
#include "util/render.hpp"

int main() {
  using namespace droppkt;

  std::printf("Training estimator...\n");
  core::DatasetConfig cfg;
  cfg.num_sessions = 600;
  cfg.seed = 41;
  core::QoeEstimator estimator;
  estimator.train(core::build_dataset(has::svc1_profile(), cfg));

  // The proxy feed: 6 cells x 6 subscribers, each streaming 3 videos.
  // At t=600s the last two cells' links congest — sessions starting there
  // afterwards stream through a squeezed link.
  engine::IncidentFeedConfig fcfg;
  fcfg.num_locations = 6;
  fcfg.degraded_locations = 2;
  fcfg.clients_per_location = 6;
  fcfg.sessions_per_client = 3;
  fcfg.incident_start_s = 600.0;
  fcfg.seed = 1000;
  engine::IncidentGroundTruth truth;
  const engine::Feed feed =
      engine::incident_feed(has::svc1_profile(), fcfg, &truth);
  std::printf("Proxy feed: %zu TLS records, %zu sessions; incident hits "
              "%zu/%zu cells at t=%.0fs\n\n",
              feed.size(), truth.sessions.size(),
              truth.degraded_locations.size(),
              truth.degraded_locations.size() + truth.healthy_locations.size(),
              truth.incident_start_s);

  // The alerting layer: stable per-session verdicts (3 consistent
  // confident estimates to flip), folded into a decaying per-cell window,
  // raised as an incident once the Wilson lower bound of the low-QoE rate
  // credibly exceeds 50%.
  alert::AlertPipelineConfig acfg;
  acfg.filter.hysteresis_k = 3;
  acfg.filter.min_confidence = 0.5;
  acfg.detector.half_life_s = 600.0;
  acfg.detector.min_effective_sessions = 4.0;
  // Residential cells hover well under 35% low-QoE in the healthy pool,
  // so credibly exceeding it is already incident-grade.
  acfg.detector.alert_rate = 0.35;
  acfg.manager.defaults.raise_rate = 0.35;
  acfg.manager.defaults.clear_rate = 0.2;
  alert::AlertPipeline alerts(acfg);

  engine::EngineConfig ecfg;
  ecfg.num_shards = 4;
  ecfg.monitor.client_idle_timeout_s = 120.0;
  ecfg.monitor.provisional_every = 4;  // in-flight estimate cadence
  ecfg.watermark_interval_s = 15.0;
  ecfg.alert_sink = &alerts;

  std::mutex mu;
  int class_counts[3] = {0, 0, 0};
  std::atomic<std::size_t> provisional_low{0};
  engine::IngestEngine eng(
      estimator,
      [&](const core::MonitoredSessionView& s) {
        const std::lock_guard<std::mutex> lock(mu);
        ++class_counts[s.predicted_class];
      },
      [&](const core::ProvisionalEstimate& p) {
        // Mid-session screening: the alert pipeline keys off these same
        // estimates instead of waiting for the idle timeout.
        if (p.predicted_class == 0) ++provisional_low;
      },
      ecfg);

  for (const auto& r : feed) eng.ingest(r.client, r.txn);
  eng.finish();

  std::printf("Alert timeline (deterministic across shard counts):\n");
  for (const auto& ev : alerts.log_snapshot()) {
    std::printf("  [%7.1fs] #%llu %-7s %-8s  low-QoE rate in "
                "[%.2f, %.2f], %.1f effective sessions\n",
                ev.time_s, static_cast<unsigned long long>(ev.id),
                ev.kind == alert::AlertEvent::Kind::kRaised ? "RAISED"
                                                            : "CLEARED",
                ev.location.c_str(), ev.rate_low, ev.rate_high,
                ev.effective_sessions);
  }

  // Where each cell's evidence is heading: the detector's decaying window
  // evaluated along a future horizon (no new sessions assumed), so an
  // operator can read off when a quiet incident will clear on its own.
  constexpr double kHorizonS = 1800.0;
  constexpr std::size_t kSteps = 24;
  std::printf("\nPer-cell state with projected decay over the next %.0f "
              "min (each cell: effective sessions at +0..%.0f min):\n",
              kHorizonS / 60.0, kHorizonS / 60.0);
  util::TextTable cells(
      {"cell", "eff sessions", "low-QoE rate", "state", "decay horizon"});
  for (const auto& [name, w] : alerts.location_snapshot()) {
    const auto curve = alerts.location_horizon(name, kHorizonS, kSteps);
    std::vector<double> eff;
    eff.reserve(curve.size());
    for (const auto& step : curve) eff.push_back(step.effective_sessions);
    char rate[32];
    std::snprintf(rate, sizeof(rate), "[%.2f, %.2f]", w.interval.low,
                  w.interval.high);
    cells.add_row({name, util::fixed(w.effective_sessions, 1), rate,
                   w.degraded ? "DEGRADED" : "ok", util::sparkline(eff)});
  }
  std::printf("%s", cells.render().c_str());

  const auto snap = eng.stats();
  std::printf("\nEngine statistics (%zu shards):\n%s\n", eng.num_shards(),
              snap.to_string().c_str());
  std::printf("Session QoE — low: %d   medium: %d   high: %d\n",
              class_counts[0], class_counts[1], class_counts[2]);
  std::printf("In-flight screening: %zu provisional low-QoE estimates "
              "surfaced before session close\n", provisional_low.load());
  std::printf("Open alerts at shutdown: %zu (ground truth: %zu degraded "
              "cells)\n", alerts.open_alerts(),
              truth.degraded_locations.size());
  return 0;
}
