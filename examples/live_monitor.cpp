// Streaming monitor over an interleaved proxy feed: many subscribers
// watch back-to-back videos; the proxy exports TLS records in global
// time order; the monitor demultiplexes, splits sessions online and
// classifies each one as it completes.
//
// This is the single-threaded reference loop; engine_monitor.cpp runs the
// same workflow through the sharded multi-threaded IngestEngine.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/dataset_builder.hpp"
#include "core/monitor.hpp"

int main() {
  using namespace droppkt;

  std::printf("Training estimator...\n");
  core::DatasetConfig cfg;
  cfg.num_sessions = 600;
  cfg.seed = 41;
  core::QoeEstimator estimator;
  estimator.train(core::build_dataset(has::svc1_profile(), cfg));

  // Build the proxy feed: 6 subscribers, each streaming 4 back-to-back
  // videos, interleaved in time.
  struct Record {
    std::string client;
    trace::TlsTransaction txn;
  };
  std::vector<Record> feed;
  std::size_t true_sessions = 0;
  for (int c = 0; c < 6; ++c) {
    const auto stream =
        core::build_back_to_back(has::svc1_profile(), 4, 1000 + c);
    true_sessions += stream.num_sessions;
    const std::string client = "subscriber-" + std::to_string(c);
    for (const auto& t : stream.merged) {
      Record r;
      r.client = client;
      r.txn = t;
      r.txn.start_s += c * 37.0;  // subscribers start at different times
      r.txn.end_s += c * 37.0;
      feed.push_back(std::move(r));
    }
  }
  std::sort(feed.begin(), feed.end(), [](const Record& a, const Record& b) {
    return a.txn.start_s < b.txn.start_s;
  });
  std::printf("Proxy feed: %zu TLS records from 6 subscribers "
              "(%zu true sessions)\n\n", feed.size(), true_sessions);

  // Run the monitor over the feed.
  int class_counts[3] = {0, 0, 0};
  core::StreamingMonitor monitor(
      estimator,
      [&](const core::MonitoredSession& s) {
        ++class_counts[s.predicted_class];
        std::printf("  [%7.1fs] %-13s session ended: %3zu transactions, "
                    "QoE %s\n",
                    s.end_s, s.client.c_str(), s.transactions.size(),
                    estimator.class_name(s.predicted_class).c_str());
      });
  for (const auto& r : feed) monitor.observe(r.client, r.txn);
  monitor.finish();

  std::printf("\nMonitoring window summary: %zu sessions reported "
              "(%zu true)\n", monitor.sessions_reported(), true_sessions);
  std::printf("  low: %d   medium: %d   high: %d\n", class_counts[0],
              class_counts[1], class_counts[2]);
  std::printf("\nLow-QoE sessions would be aggregated per network location\n"
              "to drive the adaptive-monitoring escalation.\n");
  return 0;
}
