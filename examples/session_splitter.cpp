// Session splitting: recover per-session TLS logs from a user's merged
// proxy log when videos are watched back-to-back, then estimate QoE for
// each recovered session (paper Section 4.2, Table 5 heuristic in use).
#include <cstdio>

#include "core/dataset_builder.hpp"
#include "core/estimator.hpp"
#include "core/session_id.hpp"

int main() {
  using namespace droppkt;

  // Train an estimator once.
  std::printf("Training estimator...\n");
  core::DatasetConfig cfg;
  cfg.num_sessions = 500;
  cfg.seed = 21;
  core::QoeEstimator estimator;
  estimator.train(core::build_dataset(has::svc1_profile(), cfg));

  // A user binge-watches 6 videos back-to-back; the proxy exports one
  // merged log with overlapping connections at every boundary.
  const auto stream = core::build_back_to_back(has::svc1_profile(), 6, 77);
  std::printf("\nMerged proxy log: %zu TLS transactions across %zu "
              "back-to-back sessions\n",
              stream.merged.size(), stream.num_sessions);

  // A timeout rule would see no boundary: show the overlap.
  std::size_t overlapping = 0;
  for (std::size_t i = 1; i < stream.merged.size(); ++i) {
    if (stream.truth_new[i]) {
      for (std::size_t j = 0; j < i; ++j) {
        if (stream.merged[j].end_s > stream.merged[i].start_s) {
          ++overlapping;
          break;
        }
      }
    }
  }
  std::printf("Session boundaries with transactions still open across them: "
              "%zu of %zu\n", overlapping, stream.num_sessions - 1);

  // Split with the burst + fresh-server heuristic and classify each part.
  const auto sessions = core::split_sessions(stream.merged);
  std::printf("\nHeuristic recovered %zu sessions (true: %zu):\n\n",
              sessions.size(), stream.num_sessions);
  for (std::size_t i = 0; i < sessions.size(); ++i) {
    const auto& s = sessions[i];
    const int qoe = estimator.predict(s);
    double dl = 0.0;
    for (const auto& t : s) dl += t.dl_bytes;
    std::printf("  session %zu: %3zu transactions, %6.1f MB downlink, "
                "starts %7.1fs -> estimated QoE: %s\n",
                i + 1, s.size(), dl / 1e6, s.front().start_s,
                estimator.class_name(qoe).c_str());
  }

  std::printf("\nWithout splitting, the whole stream would be scored as one\n"
              "session, hiding per-video problems and corrupting duration-\n"
              "sensitive features.\n");
  return 0;
}
