// CLI: classify proxy TLS-log exports with a saved model.
//
//   classify_log <model-path> <tls-log.csv> [more-logs.csv ...]
//
// Each CSV holds one session's TLS transactions in the proxy export
// format (start_s,end_s,ul_bytes,dl_bytes,sni). Demonstrates the
// deployment path: models are trained once (train_model) and shipped to
// monitoring nodes that only ever see proxy logs.
#include <cstdio>

#include "core/estimator.hpp"
#include "trace/serialize.hpp"

int main(int argc, char** argv) {
  using namespace droppkt;
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <model-path> <tls-log.csv> [...]\n",
                 argv[0]);
    return 2;
  }
  try {
    const auto estimator = core::QoeEstimator::load_file(argv[1]);
    std::printf("loaded %s estimator from %s\n\n",
                core::to_string(estimator.config().target).c_str(), argv[1]);
    for (int i = 2; i < argc; ++i) {
      const auto log = trace::read_tls_csv_file(argv[i]);
      const int cls = estimator.predict(log);
      const auto proba = estimator.predict_proba(log);
      std::printf("%-32s %zu transactions -> %-6s (p=%.2f)\n", argv[i],
                  log.size(), estimator.class_name(cls).c_str(),
                  proba[static_cast<std::size_t>(cls)]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
