// ISP network-wide monitoring: the paper's motivating scenario.
//
// An ISP watches many network locations (cells / DSLAMs). Each location
// serves sessions under its own network conditions. The estimator,
// trained once on labelled data, classifies every session from its proxy
// TLS log alone; locations with a high rate of low-QoE sessions are
// flagged for further diagnosis.
#include <cstdio>
#include <vector>

#include "core/dataset_builder.hpp"
#include "core/estimator.hpp"
#include "has/player.hpp"
#include "net/link_model.hpp"
#include "net/trace_generator.hpp"
#include "trace/connection_manager.hpp"
#include "util/render.hpp"

namespace {

using namespace droppkt;

/// One monitored location: an environment class standing in for its access
/// technology and congestion level.
struct Location {
  std::string name;
  net::Environment env;
  double congestion;  // 0 = healthy, 1 = heavily congested
};

/// Simulate the sessions one location produced during a monitoring window.
std::vector<trace::TlsLog> observe_location(const Location& loc,
                                            std::size_t sessions,
                                            util::Rng& rng) {
  net::TraceGenerator gen(rng());
  const auto svc = has::svc1_profile();
  const auto catalog = has::VideoCatalog::generate(svc.name, 20, rng());
  const has::PlayerSimulator player;
  std::vector<trace::TlsLog> logs;
  for (std::size_t i = 0; i < sessions; ++i) {
    auto bw = gen.generate(loc.env, 600.0);
    // Congestion shrinks the effective capacity.
    std::vector<net::BandwidthSample> squeezed;
    for (const auto& s : bw.samples()) {
      squeezed.push_back({s.t_s, s.kbps * (1.0 - 0.75 * loc.congestion)});
    }
    const net::BandwidthTrace trace(std::move(squeezed), bw.duration_s(),
                                    loc.env);
    const net::LinkModel link(trace);
    auto playback =
        player.play(svc, catalog.sample(rng), link, rng.uniform(60.0, 300.0),
                    rng);
    const trace::ConnectionManager conns(svc.connections, rng);
    logs.push_back(conns.collect(playback.http, rng));
  }
  return logs;
}

}  // namespace

int main() {
  // 1. Train the estimator on a labelled corpus (in deployment: sessions
  //    with client-side ground truth; here: the simulator).
  std::printf("Training combined-QoE estimator on 600 labelled sessions...\n");
  core::DatasetConfig cfg;
  cfg.num_sessions = 600;
  cfg.seed = 11;
  core::QoeEstimator estimator;
  estimator.train(core::build_dataset(has::svc1_profile(), cfg));

  // 2. Monitor a set of locations, each contributing only TLS logs.
  const std::vector<Location> locations{
      {"metro-cell-001", net::Environment::kLte, 0.0},
      {"metro-cell-002", net::Environment::kLte, 0.85},  // congested!
      {"suburb-dsl-017", net::Environment::kBroadband, 0.1},
      {"rural-3g-044", net::Environment::kThreeG, 0.3},
      {"rural-3g-045", net::Environment::kThreeG, 0.9},   // degraded!
      {"metro-fiber-100", net::Environment::kBroadband, 0.0},
  };

  util::Rng rng(99);
  std::printf("Scoring 40 sessions per location from TLS logs only...\n\n");
  std::vector<std::pair<std::string, double>> low_rates;
  for (const auto& loc : locations) {
    const auto logs = observe_location(loc, 40, rng);
    std::size_t low = 0;
    for (const auto& log : logs) {
      low += estimator.predict(log) == 0;
    }
    low_rates.emplace_back(loc.name,
                           100.0 * static_cast<double>(low) / logs.size());
  }

  std::printf("Low-QoE session rate per location:\n%s\n",
              util::bar_chart(low_rates, 40, "%").c_str());

  std::printf("Locations above a 50%% low-QoE threshold would be flagged\n"
              "for fine-grained (packet-level) collection - the adaptive\n"
              "monitoring workflow the paper proposes.\n");
  return 0;
}
