// Quickstart: simulate a small dataset, train the estimator, and classify
// a fresh session's TLS transaction log.
//
// This is the whole public API surface in ~60 lines: build_dataset ->
// QoeEstimator::train -> QoeEstimator::predict.
#include <cstdio>

#include "core/dataset_builder.hpp"
#include "core/estimator.hpp"
#include "core/pipeline.hpp"

int main() {
  using namespace droppkt;

  // 1. Simulate a training corpus for Svc1 (300 sessions keeps this quick;
  //    the benches use the paper's full 2111).
  const has::ServiceProfile svc = has::svc1_profile();
  core::DatasetConfig config;
  config.num_sessions = 300;
  config.seed = 7;
  std::printf("Simulating %zu %s sessions...\n", config.num_sessions,
              svc.name.c_str());
  const core::LabeledDataset dataset = core::build_dataset(svc, config);

  // 2. Train a combined-QoE estimator on the first 250 sessions.
  core::QoeEstimator estimator;
  const core::LabeledDataset train(dataset.begin(), dataset.begin() + 250);
  estimator.train(train);
  std::printf("Trained Random Forest on %zu sessions (38 TLS features).\n\n",
              train.size());

  // 3. Classify held-out sessions straight from their TLS logs.
  int correct = 0, total = 0;
  for (std::size_t i = 250; i < dataset.size(); ++i) {
    const auto& session = dataset[i];
    const int predicted = estimator.predict(session.record.tls);
    const int actual = session.labels.combined;
    correct += (predicted == actual);
    ++total;
    if (i < 256) {  // print a few
      std::printf("session %zu: %2zu TLS transactions -> predicted %-6s actual %-6s\n",
                  i, session.record.tls.size(),
                  estimator.class_name(predicted).c_str(),
                  estimator.class_name(actual).c_str());
    }
  }
  std::printf("\nHold-out accuracy: %d/%d = %.0f%%\n", correct, total,
              100.0 * correct / total);

  // 4. What drives the predictions?
  std::printf("\nTop-5 feature importances:\n");
  const auto importances = estimator.feature_importances();
  for (std::size_t i = 0; i < 5 && i < importances.size(); ++i) {
    std::printf("  %-16s %.3f\n", importances[i].first.c_str(),
                importances[i].second);
  }
  return 0;
}
