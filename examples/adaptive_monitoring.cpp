// Adaptive monitoring: the paper's concluding proposal. Screen all
// sessions with the cheap TLS-based estimator; escalate only flagged
// sessions to packet-level collection and the heavier ML16 pipeline.
// The example quantifies the accuracy/cost trade-off of that policy.
#include <chrono>
#include <cstdio>

#include "core/dataset_builder.hpp"
#include "core/estimator.hpp"
#include "core/ml16_features.hpp"
#include "core/pipeline.hpp"
#include "net/link_model.hpp"
#include "trace/packet_generator.hpp"

int main() {
  using namespace droppkt;
  using Clock = std::chrono::steady_clock;

  // Corpus: train/test split of simulated Svc2 sessions.
  core::DatasetConfig cfg;
  cfg.num_sessions = 900;
  cfg.seed = 31;
  const auto all = core::build_dataset(has::svc2_profile(), cfg);
  const core::LabeledDataset train(all.begin(), all.begin() + 600);
  const core::LabeledDataset monitor(all.begin() + 600, all.end());

  std::printf("Training TLS screening estimator on %zu sessions...\n",
              train.size());
  core::QoeEstimator screener;
  screener.train(train);

  // Also train the packet-level model (used only on escalated sessions).
  ml::RandomForest packet_model;
  packet_model.fit(core::make_ml16_dataset(train, core::QoeTarget::kCombined));

  // Phase 1: screen everything from TLS logs (cheap).
  std::printf("Screening %zu live sessions from TLS transactions...\n\n",
              monitor.size());
  const auto t0 = Clock::now();
  std::vector<std::size_t> flagged;
  for (std::size_t i = 0; i < monitor.size(); ++i) {
    if (screener.predict(monitor[i].record.tls) == 0) flagged.push_back(i);
  }
  const double screen_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  // Phase 2: escalate flagged sessions to packet capture + ML16.
  const auto t1 = Clock::now();
  std::size_t packets_processed = 0;
  std::size_t confirmed = 0;
  for (std::size_t i : flagged) {
    const auto& s = monitor[i];
    util::Rng rng(s.record.seed ^ 0x9ac4e7ULL);
    const trace::PacketTraceGenerator gen(
        net::link_params_for(s.record.environment));
    const auto packets = gen.generate(s.record.http, rng);
    packets_processed += packets.size();
    const auto features = core::extract_ml16_features(packets);
    if (packet_model.predict(features) == 0) ++confirmed;
  }
  const double escalate_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - t1).count();

  // Ground truth for the report.
  std::size_t actual_low = 0, caught = 0;
  for (std::size_t i = 0; i < monitor.size(); ++i) {
    if (monitor[i].labels.combined == 0) {
      ++actual_low;
      for (std::size_t f : flagged) {
        if (f == i) {
          ++caught;
          break;
        }
      }
    }
  }

  std::printf("Results:\n");
  std::printf("  sessions screened            : %zu (TLS only, %.1f ms)\n",
              monitor.size(), screen_ms);
  std::printf("  flagged low QoE              : %zu\n", flagged.size());
  std::printf("  truly low QoE                : %zu (recall %.0f%%)\n",
              actual_low, 100.0 * caught / std::max<std::size_t>(1, actual_low));
  std::printf("  escalated to packet pipeline : %zu sessions, %zu packets "
              "(%.0f ms)\n", flagged.size(), packets_processed, escalate_ms);
  std::printf("  confirmed by ML16            : %zu\n\n", confirmed);

  const double full_cost_estimate =
      escalate_ms * static_cast<double>(monitor.size()) /
      std::max<std::size_t>(1, flagged.size());
  std::printf("Packet-level monitoring of ALL sessions would have cost\n"
              "~%.0f ms of feature extraction; adaptive monitoring spent\n"
              "%.1f + %.0f ms - the paper's scalability argument in action.\n",
              full_cost_estimate, screen_ms, escalate_ms);
  return 0;
}
