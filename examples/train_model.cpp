// CLI: train a QoE estimator and persist it to disk.
//
//   train_model <service> <model-path> [num-sessions] [target]
//
//   service      Svc1 | Svc2 | Svc3
//   target       combined (default) | quality | rebuffering
//
// In a deployment the labelled corpus would come from proxy logs joined
// with client-side ground truth; here the simulator produces it.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/dataset_builder.hpp"
#include "core/estimator.hpp"

int main(int argc, char** argv) {
  using namespace droppkt;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <Svc1|Svc2|Svc3> <model-path> [num-sessions] "
                 "[combined|quality|rebuffering]\n",
                 argv[0]);
    return 2;
  }
  const std::string service = argv[1];
  const std::string model_path = argv[2];
  const std::size_t sessions =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 1000;

  core::EstimatorConfig config;
  if (argc > 4) {
    if (std::strcmp(argv[4], "quality") == 0) {
      config.target = core::QoeTarget::kVideoQuality;
    } else if (std::strcmp(argv[4], "rebuffering") == 0) {
      config.target = core::QoeTarget::kRebuffering;
    } else if (std::strcmp(argv[4], "combined") != 0) {
      std::fprintf(stderr, "unknown target '%s'\n", argv[4]);
      return 2;
    }
  }

  try {
    const auto svc = has::service_by_name(service);
    core::DatasetConfig data_cfg;
    data_cfg.num_sessions = sessions;
    std::printf("simulating %zu labelled %s sessions...\n", sessions,
                service.c_str());
    const auto dataset = core::build_dataset(svc, data_cfg);

    core::QoeEstimator estimator(config);
    estimator.train(dataset);
    estimator.save_file(model_path);
    std::printf("trained %s estimator on %zu sessions -> %s\n",
                core::to_string(config.target).c_str(), dataset.size(),
                model_path.c_str());

    std::printf("top features:\n");
    const auto imp = estimator.feature_importances();
    for (std::size_t i = 0; i < 5 && i < imp.size(); ++i) {
      std::printf("  %-16s %.3f\n", imp[i].first.c_str(), imp[i].second);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
